//! A dynamic bitset used as the adjacency-row representation of
//! [`crate::SocialGraph`] and as the candidate set in the clique search.

use core::fmt;

/// A fixed-capacity dynamic bitset over `0..capacity`.
///
/// # Example
/// ```
/// # use s3_graph::BitSet;
/// let mut s = BitSet::new(70);
/// s.insert(3);
/// s.insert(64);
/// assert!(s.contains(3) && s.contains(64) && !s.contains(4));
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 64]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty bitset able to hold values in `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Creates a bitset with every bit in `0..capacity` set.
    pub fn full(capacity: usize) -> Self {
        let mut s = BitSet::new(capacity);
        for w in &mut s.words {
            *w = u64::MAX;
        }
        s.trim();
        s
    }

    fn trim(&mut self) {
        let rem = self.capacity % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    /// Capacity (exclusive upper bound of storable values).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `value`. Returns true if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `value >= capacity`.
    #[inline]
    pub fn insert(&mut self, value: usize) -> bool {
        assert!(
            value < self.capacity,
            "bitset value {value} out of capacity {}",
            self.capacity
        );
        let (w, b) = (value / 64, value % 64);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !was
    }

    /// Removes `value`. Returns true if it was present.
    ///
    /// # Panics
    ///
    /// Panics if `value >= capacity`.
    #[inline]
    pub fn remove(&mut self, value: usize) -> bool {
        assert!(
            value < self.capacity,
            "bitset value {value} out of capacity {}",
            self.capacity
        );
        let (w, b) = (value / 64, value % 64);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        was
    }

    /// Membership test. Out-of-capacity values are simply absent.
    #[inline]
    pub fn contains(&self, value: usize) -> bool {
        if value >= self.capacity {
            return false;
        }
        self.words[value / 64] & (1 << (value % 64)) != 0
    }

    /// Number of set bits.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Clears every bit.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// In-place intersection with `other`.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place union with `other`.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place difference (`self \ other`).
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn difference_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// A fresh intersection without mutating either operand.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn intersection(&self, other: &BitSet) -> BitSet {
        let mut out = self.clone();
        out.intersect_with(other);
        out
    }

    /// The backing `u64` words, least-significant bit first. Bit `b` of
    /// word `w` holds membership of value `w * 64 + b`; bits at and above
    /// `capacity` are always zero. This is the zero-copy export the clique
    /// kernel uses to lift adjacency rows into its flat word buffers.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// The lowest set bit, if any.
    pub fn first(&self) -> Option<usize> {
        for (i, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(i * 64 + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Iterates set bits in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

/// Ascending iterator over the set bits of a [`BitSet`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    set: &'a BitSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

impl<'a> IntoIterator for &'a BitSet {
    type Item = usize;
    type IntoIter = Iter<'a>;
    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

impl FromIterator<usize> for BitSet {
    /// Collects values into a bitset sized to the maximum value + 1.
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let values: Vec<usize> = iter.into_iter().collect();
        let capacity = values.iter().max().map_or(0, |&m| m + 1);
        let mut s = BitSet::new(capacity);
        for v in values {
            s.insert(v);
        }
        s
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(100);
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(99));
        assert!(!s.insert(63)); // duplicate
        assert_eq!(s.len(), 4);
        assert!(s.remove(63));
        assert!(!s.remove(63));
        assert!(!s.contains(63));
        assert!(s.contains(64));
        assert!(!s.contains(1000)); // out of capacity is just absent
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn insert_out_of_capacity_panics() {
        BitSet::new(10).insert(10);
    }

    #[test]
    fn full_and_trim() {
        let s = BitSet::full(70);
        assert_eq!(s.len(), 70);
        assert!(s.contains(69));
        assert!(!s.contains(70));
        let e = BitSet::full(0);
        assert!(e.is_empty());
    }

    #[test]
    fn set_operations() {
        let a: BitSet = [1, 2, 3, 64].into_iter().collect();
        let mut a = {
            // normalize capacity for the ops below
            let mut s = BitSet::new(100);
            for v in a.iter() {
                s.insert(v);
            }
            s
        };
        let mut b = BitSet::new(100);
        for v in [2, 3, 4, 65] {
            b.insert(v);
        }
        let inter = a.intersection(&b);
        assert_eq!(inter.iter().collect::<Vec<_>>(), vec![2, 3]);
        a.union_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 2, 3, 4, 64, 65]);
        a.difference_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 64]);
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn mismatched_capacity_panics() {
        let mut a = BitSet::new(10);
        let b = BitSet::new(20);
        a.intersect_with(&b);
    }

    #[test]
    fn iter_crosses_word_boundaries() {
        let mut s = BitSet::new(200);
        let values = [0, 1, 63, 64, 127, 128, 199];
        for v in values {
            s.insert(v);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), values.to_vec());
        assert_eq!(s.first(), Some(0));
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.first(), None);
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn from_iterator_sizes_to_max() {
        let s: BitSet = [5, 2, 9].into_iter().collect();
        assert_eq!(s.capacity(), 10);
        assert_eq!(s.len(), 3);
        let empty: BitSet = std::iter::empty().collect();
        assert_eq!(empty.capacity(), 0);
    }

    #[test]
    fn debug_renders_as_set() {
        let s: BitSet = [1, 3].into_iter().collect();
        assert_eq!(format!("{s:?}"), "{1, 3}");
    }
}
