//! The original per-node-allocating clique searcher, pinned as an oracle.
//!
//! This is the pre-kernel implementation, kept verbatim: `expand` clones
//! the candidate [`BitSet`] at every search node, `added_weight` calls
//! [`SocialGraph::weight`] per pair, and the subset search rebuilds a
//! `HashMap` index per call. It exists so that
//!
//! * `tests/clique_parity.rs` can prove the word-level kernel reproduces
//!   it bit-for-bit (same vertices, same tie-breaks, same `truncated`
//!   flags, byte-identical partitions), and
//! * `benches/clique.rs` and the `clique_bench` binary can publish the
//!   kernel's speedup against a fixed baseline.
//!
//! Do not "optimise" this module — its value is in not changing.

use super::{Clique, CliqueBudget};
use crate::coloring::greedy_coloring;
use crate::{BitSet, SocialGraph};

struct Searcher<'g> {
    graph: &'g SocialGraph,
    /// Search order (Östergård iterates suffixes of this order).
    order: Vec<usize>,
    /// Adjacency re-indexed by order position.
    adj: Vec<BitSet>,
    /// c[i] = clique number of the subgraph induced by order positions i..n.
    c: Vec<usize>,
    best: Vec<usize>, // order positions
    best_weight: f64,
    nodes: u64,
    max_nodes: u64,
    truncated: bool,
}

impl<'g> Searcher<'g> {
    fn new(graph: &'g SocialGraph, budget: CliqueBudget) -> Self {
        let n = graph.vertex_count();
        let coloring = greedy_coloring(graph);
        let order = coloring.order();
        let mut pos = vec![0usize; n];
        for (p, &v) in order.iter().enumerate() {
            pos[v] = p;
        }
        let mut adj: Vec<BitSet> = (0..n).map(|_| BitSet::new(n)).collect();
        for v in 0..n {
            for u in graph.neighbors(v) {
                adj[pos[v]].insert(pos[u]);
            }
        }
        Searcher {
            graph,
            order,
            adj,
            c: vec![0; n],
            best: Vec::new(),
            best_weight: f64::NEG_INFINITY,
            nodes: 0,
            max_nodes: budget.max_nodes,
            truncated: false,
        }
    }

    fn expand(&mut self, candidates: &BitSet, current: &mut Vec<usize>, current_weight: f64) {
        self.nodes += 1;
        if self.nodes > self.max_nodes {
            self.truncated = true;
            return;
        }
        if candidates.is_empty() {
            let better = current.len() > self.best.len()
                || (current.len() == self.best.len() && current_weight > self.best_weight);
            if better {
                self.best = current.clone();
                self.best_weight = current_weight;
            }
            return;
        }
        let mut cands = candidates.clone();
        while let Some(p) = cands.first() {
            // Size bound: even taking every remaining candidate cannot beat
            // the record size (strict: equal size may still win on weight).
            if current.len() + cands.len() < self.best.len() {
                return;
            }
            // Östergård suffix bound.
            if self.c[p] > 0 && current.len() + self.c[p] < self.best.len() {
                return;
            }
            cands.remove(p);
            let v = self.order[p];
            let added_weight: f64 = current
                .iter()
                .map(|&q| self.graph.weight(v, self.order[q]))
                .sum();
            current.push(p);
            let next = cands.intersection(&self.adj[p]);
            self.expand(&next, current, current_weight + added_weight);
            current.pop();
            if self.truncated {
                return;
            }
        }
        // All candidates consumed without extension: `current` itself is a
        // maximal candidate at this node.
        let better = current.len() > self.best.len()
            || (current.len() == self.best.len() && current_weight > self.best_weight);
        if better {
            self.best = current.clone();
            self.best_weight = current_weight;
        }
    }

    fn run(mut self) -> Clique {
        let n = self.graph.vertex_count();
        if n == 0 {
            return Clique {
                vertices: Vec::new(),
                weight_sum: 0.0,
                truncated: false,
            };
        }
        // Iterate suffixes largest-first as Östergård prescribes: S_i is the
        // set of order positions i..n; c[i] is the clique number within S_i.
        for i in (0..n).rev() {
            let mut suffix_neighbors = self.adj[i].clone();
            // Restrict to positions > i (the rest of the suffix).
            let mut mask = BitSet::new(n);
            for p in i + 1..n {
                mask.insert(p);
            }
            suffix_neighbors.intersect_with(&mask);
            let mut current = vec![i];
            self.expand(&suffix_neighbors, &mut current, 0.0);
            self.c[i] = self.best.len();
            if self.truncated {
                break;
            }
        }
        let mut vertices: Vec<usize> = self.best.iter().map(|&p| self.order[p]).collect();
        vertices.sort_unstable();
        let weight_sum = self.graph.weight_sum(&vertices);
        Clique {
            vertices,
            weight_sum,
            truncated: self.truncated,
        }
    }
}

/// Reference [`super::max_clique`].
pub fn max_clique(graph: &SocialGraph) -> Clique {
    max_clique_with_budget(graph, CliqueBudget::default())
}

/// Reference [`super::max_clique_with_budget`].
pub fn max_clique_with_budget(graph: &SocialGraph, budget: CliqueBudget) -> Clique {
    Searcher::new(graph, budget).run()
}

/// Reference [`super::max_clique_in_subset`].
pub fn max_clique_in_subset(graph: &SocialGraph, subset: &[usize]) -> Clique {
    max_clique_in_subset_with_budget(graph, subset, CliqueBudget::default())
}

/// Reference [`super::max_clique_in_subset_with_budget`] — builds an
/// explicit induced [`SocialGraph`] through a per-call `HashMap`.
pub fn max_clique_in_subset_with_budget(
    graph: &SocialGraph,
    subset: &[usize],
    budget: CliqueBudget,
) -> Clique {
    let mut index_of = std::collections::HashMap::with_capacity(subset.len());
    for (i, &v) in subset.iter().enumerate() {
        index_of.insert(v, i);
    }
    let mut sub = SocialGraph::new(subset.len());
    for (i, &u) in subset.iter().enumerate() {
        for v in graph.neighbors(u) {
            if let Some(&j) = index_of.get(&v) {
                if j > i {
                    sub.add_edge(i, j, graph.weight(u, v))
                        .expect("valid subgraph edge");
                }
            }
        }
    }
    let inner = max_clique_with_budget(&sub, budget);
    let mut vertices: Vec<usize> = inner.vertices.iter().map(|&i| subset[i]).collect();
    vertices.sort_unstable();
    Clique {
        weight_sum: graph.weight_sum(&vertices),
        vertices,
        truncated: inner.truncated,
    }
}

/// Reference [`crate::partition::clique_partition_with_budget`]: the same
/// extract-and-erase loop driven by the reference searcher, for
/// byte-identical partition parity tests.
pub fn clique_partition_with_budget(graph: &SocialGraph, budget: CliqueBudget) -> Vec<Clique> {
    let mut work = graph.clone();
    let mut out = Vec::new();
    let mut remaining: Vec<bool> = vec![true; graph.vertex_count()];

    loop {
        let active = work.non_isolated();
        let active: Vec<usize> = active.into_iter().filter(|&v| remaining[v]).collect();
        if active.is_empty() {
            break;
        }
        let clique = max_clique_in_subset_with_budget(&work, &active, budget);
        if clique.len() < 2 {
            break;
        }
        for &v in &clique.vertices {
            remaining[v] = false;
        }
        work.isolate(&clique.vertices);
        out.push(clique);
    }

    for (v, alive) in remaining.iter().enumerate() {
        if *alive {
            out.push(Clique {
                vertices: vec![v],
                weight_sum: 0.0,
                truncated: false,
            });
        }
    }
    out
}
