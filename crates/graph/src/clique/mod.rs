//! Maximum-clique search, Östergård-style (branch-and-bound over a greedy
//! coloring order with per-suffix bounds).
//!
//! Algorithm 1 of the paper repeatedly needs "a maximum clique; if several
//! exist, the one with the largest sum of edge weights". We therefore run
//! the Östergård search with one twist: instead of stopping at the first
//! clique of record size (the classic `found` shortcut), the search
//! continues through ties and keeps the candidate with the larger weight
//! sum, pruning on size exactly as Östergård does. The per-suffix bound
//! `c[i]` (the clique number of the subgraph induced by vertices `i..n` in
//! the search order) is preserved.
//!
//! A node budget caps the worst case; the search degrades gracefully to the
//! best clique found so far when the budget runs out (and reports it).
//!
//! # Two implementations, one contract
//!
//! * [`kernel`](CliqueWorkspace) — the default: an allocation-free
//!   word-level kernel with flat `u64` adjacency rows, depth-indexed
//!   candidate buffers, popcount-driven bounds, and precomputed weight
//!   rows. Zero heap allocations per search node in steady state; see
//!   `docs/PERF.md` for the layout and bound derivation.
//! * [`mod@reference`] — the original per-node-allocating searcher, kept as
//!   the pinned oracle: `tests/clique_parity.rs` proves the kernel
//!   reproduces it bit-for-bit (same cliques, same tie-breaks, same
//!   `truncated` flags, byte-identical partitions), and the clique
//!   benchmarks publish the kernel's speedup against it.
//!
//! With the `fast-math` feature the kernel's tie-break weight accumulation
//! is reassociated for speed and the bit-for-bit guarantee against the
//! reference is **waived** (clique sizes stay exact; only equal-size
//! weight tie-breaks may differ at ULP scale). The feature is off by
//! default and excluded from the parity suite.

mod kernel;
pub mod reference;

pub use kernel::CliqueWorkspace;

use crate::SocialGraph;

/// A clique found by the search.
#[derive(Debug, Clone, PartialEq)]
pub struct Clique {
    /// Member vertices, ascending.
    pub vertices: Vec<usize>,
    /// Sum of pairwise edge weights inside the clique.
    pub weight_sum: f64,
    /// True when the search exhausted its node budget before proving
    /// optimality (the clique is still valid, possibly sub-optimal).
    pub truncated: bool,
}

impl Clique {
    /// Number of members.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// True for the empty clique (returned only for edgeless/empty input
    /// sets).
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }
}

/// Search limits for [`max_clique_with_budget`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CliqueBudget {
    /// Maximum branch-and-bound nodes to expand.
    pub max_nodes: u64,
}

impl Default for CliqueBudget {
    fn default() -> Self {
        // Generous for the paper's workload: cliques live inside one
        // controller domain's arrival batch (tens of users).
        CliqueBudget {
            max_nodes: 5_000_000,
        }
    }
}

/// Finds a maximum clique of `graph`, breaking size ties by the largest
/// pairwise edge-weight sum, with the default node budget.
///
/// Returns the empty clique for a graph with no vertices; for any graph with
/// at least one vertex, the result has at least one member.
///
/// One-shot convenience over [`CliqueWorkspace::max_clique`]; repeated
/// extractions (the [`crate::partition`] loop, the selector's batch path)
/// should hold a [`CliqueWorkspace`] and reuse it.
///
/// # Example
/// ```
/// # use s3_graph::{SocialGraph, clique::max_clique};
/// let mut g = SocialGraph::new(4);
/// g.add_edge(0, 1, 0.4)?;
/// g.add_edge(1, 2, 0.4)?;
/// g.add_edge(0, 2, 0.4)?;
/// g.add_edge(2, 3, 0.4)?;
/// let c = max_clique(&g);
/// assert_eq!(c.vertices, vec![0, 1, 2]);
/// # Ok::<(), s3_graph::GraphError>(())
/// ```
pub fn max_clique(graph: &SocialGraph) -> Clique {
    max_clique_with_budget(graph, CliqueBudget::default())
}

/// [`max_clique`] with an explicit node budget; `truncated` is set on the
/// result when the budget was exhausted.
pub fn max_clique_with_budget(graph: &SocialGraph, budget: CliqueBudget) -> Clique {
    CliqueWorkspace::new().max_clique(graph, budget)
}

/// Finds the maximum clique *within a subset* of vertices (the induced
/// subgraph, mapped back to the parent ids). Algorithm 1 uses this when
/// only part of the arrival batch remains to be placed.
pub fn max_clique_in_subset(graph: &SocialGraph, subset: &[usize]) -> Clique {
    max_clique_in_subset_with_budget(graph, subset, CliqueBudget::default())
}

/// [`max_clique_in_subset`] with an explicit node budget.
pub fn max_clique_in_subset_with_budget(
    graph: &SocialGraph,
    subset: &[usize],
    budget: CliqueBudget,
) -> Clique {
    CliqueWorkspace::new().max_clique_in_subset(graph, subset, budget)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(n: usize, w: f64) -> SocialGraph {
        let mut g = SocialGraph::new(n);
        for u in 0..n {
            for v in u + 1..n {
                g.add_edge(u, v, w).unwrap();
            }
        }
        g
    }

    #[test]
    fn empty_and_singleton() {
        let c = max_clique(&SocialGraph::new(0));
        assert!(c.is_empty());
        let c = max_clique(&SocialGraph::new(1));
        assert_eq!(c.vertices, vec![0]);
        assert_eq!(c.weight_sum, 0.0);
        assert!(!c.truncated);
    }

    #[test]
    fn edgeless_graph_returns_single_vertex() {
        let c = max_clique(&SocialGraph::new(5));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn complete_graph() {
        let g = complete(7, 0.5);
        let c = max_clique(&g);
        assert_eq!(c.vertices, (0..7).collect::<Vec<_>>());
        assert!((c.weight_sum - 21.0 * 0.5).abs() < 1e-12);
    }

    #[test]
    fn triangle_beats_edge() {
        let mut g = SocialGraph::new(5);
        g.add_edge(0, 1, 0.31).unwrap();
        g.add_edge(1, 2, 0.31).unwrap();
        g.add_edge(0, 2, 0.31).unwrap();
        g.add_edge(3, 4, 0.99).unwrap();
        let c = max_clique(&g);
        assert_eq!(c.vertices, vec![0, 1, 2]);
    }

    #[test]
    fn weight_breaks_size_ties() {
        // Two disjoint triangles, the second heavier.
        let mut g = SocialGraph::new(6);
        for (u, v) in [(0, 1), (1, 2), (0, 2)] {
            g.add_edge(u, v, 0.31).unwrap();
        }
        for (u, v) in [(3, 4), (4, 5), (3, 5)] {
            g.add_edge(u, v, 0.9).unwrap();
        }
        let c = max_clique(&g);
        assert_eq!(c.vertices, vec![3, 4, 5]);
        assert!((c.weight_sum - 2.7).abs() < 1e-12);
    }

    #[test]
    fn petersen_graph_clique_number_two() {
        // The Petersen graph is triangle-free with clique number 2.
        let outer = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)];
        let spokes = [(0, 5), (1, 6), (2, 7), (3, 8), (4, 9)];
        let inner = [(5, 7), (7, 9), (9, 6), (6, 8), (8, 5)];
        let mut g = SocialGraph::new(10);
        for (u, v) in outer.iter().chain(&spokes).chain(&inner) {
            g.add_edge(*u, *v, 1.0).unwrap();
        }
        let c = max_clique(&g);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn planted_clique_in_random_graph() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let n = 40;
        let mut rng = StdRng::seed_from_u64(77);
        let mut g = SocialGraph::new(n);
        for u in 0..n {
            for v in u + 1..n {
                if rng.random::<f64>() < 0.2 {
                    g.add_edge(u, v, rng.random_range(0.3..1.0)).unwrap();
                }
            }
        }
        // Plant a 7-clique on vertices 10..17.
        let planted: Vec<usize> = (10..17).collect();
        for (i, &u) in planted.iter().enumerate() {
            for &v in &planted[i + 1..] {
                g.add_edge(u, v, 0.5).unwrap();
            }
        }
        let c = max_clique(&g);
        assert!(c.len() >= 7, "found only {} vertices", c.len());
        assert!(g.is_clique(&c.vertices), "result must be a clique");
        assert!(!c.truncated);
    }

    #[test]
    fn result_is_always_a_clique_on_random_graphs() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 25;
            let mut g = SocialGraph::new(n);
            for u in 0..n {
                for v in u + 1..n {
                    if rng.random::<f64>() < 0.4 {
                        g.add_edge(u, v, rng.random_range(0.0..1.0)).unwrap();
                    }
                }
            }
            let c = max_clique(&g);
            assert!(g.is_clique(&c.vertices), "seed {seed}: not a clique");
            assert!(!c.is_empty());
            // Weight reported must equal the recomputed pairwise sum.
            assert!((c.weight_sum - g.weight_sum(&c.vertices)).abs() < 1e-9);
        }
    }

    #[test]
    fn tiny_budget_truncates_but_stays_valid() {
        let g = complete(20, 1.0);
        let c = max_clique_with_budget(&g, CliqueBudget { max_nodes: 10 });
        assert!(c.truncated);
        assert!(g.is_clique(&c.vertices));
    }

    #[test]
    fn subset_search_maps_back() {
        let mut g = SocialGraph::new(8);
        // Clique on {1, 3, 5}; bigger clique on {0, 2, 4, 6} that must be
        // invisible when we search the subset {1, 3, 5, 7}.
        for (u, v) in [(1, 3), (3, 5), (1, 5)] {
            g.add_edge(u, v, 0.4).unwrap();
        }
        for (u, v) in [(0, 2), (0, 4), (0, 6), (2, 4), (2, 6), (4, 6)] {
            g.add_edge(u, v, 0.4).unwrap();
        }
        let c = max_clique_in_subset(&g, &[1, 3, 5, 7]);
        assert_eq!(c.vertices, vec![1, 3, 5]);
        assert!((c.weight_sum - 1.2).abs() < 1e-12);
    }

    #[test]
    fn subset_of_isolated_vertices() {
        let g = SocialGraph::new(4);
        let c = max_clique_in_subset(&g, &[2, 3]);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn workspace_reuse_across_differently_sized_graphs() {
        // One workspace, many searches: results must match fresh-workspace
        // runs even when a big search precedes a small one (stale buffer
        // contents must never leak into a later extraction).
        let mut ws = CliqueWorkspace::new();
        let big = complete(70, 0.5);
        let first = ws.max_clique(&big, CliqueBudget::default());
        assert_eq!(first.len(), 70);
        let mut small = SocialGraph::new(5);
        small.add_edge(0, 1, 0.9).unwrap();
        small.add_edge(1, 2, 0.9).unwrap();
        for _ in 0..3 {
            let c = ws.max_clique(&small, CliqueBudget::default());
            assert_eq!(c.len(), 2);
            assert!(small.is_clique(&c.vertices));
        }
        let sub = ws.max_clique_in_subset(&big, &[3, 9, 41], CliqueBudget::default());
        assert_eq!(sub.vertices, vec![3, 9, 41]);
        assert!(ws.nodes_searched() > 0);
    }

    #[test]
    fn word_boundary_graphs_search_correctly() {
        // Exercise rows spanning multiple u64 words (n = 66, 128, 130).
        for n in [66usize, 128, 130] {
            let mut g = SocialGraph::new(n);
            // Plant a clique across word boundaries.
            let planted = [0usize, 63, 64, n - 1];
            for (i, &u) in planted.iter().enumerate() {
                for &v in &planted[i + 1..] {
                    g.add_edge(u, v, 0.5).unwrap();
                }
            }
            let c = max_clique(&g);
            assert_eq!(c.vertices, planted.to_vec(), "n = {n}");
        }
    }
}
