//! The allocation-free word-level clique kernel.
//!
//! Same search as [`super::reference`] — Östergård branch-and-bound over a
//! greedy-coloring order with suffix bounds and weight tie-breaks — but the
//! per-node machinery is flat `u64` rows instead of heap objects:
//!
//! * **Order-space adjacency** lives in one `Vec<u64>` of `n` rows ×
//!   `w = ⌈n/64⌉` words; intersecting a candidate set with a neighborhood
//!   is a straight `dst[k] = src[k] & adj[k]` word loop.
//! * **Depth-indexed candidate rows**: recursion depth `d` owns row `d` of
//!   a `(n+1) × w` buffer. Entering a child writes row `d+1` via one
//!   `split_at_mut`; returning costs nothing. No clones, no per-node
//!   allocation.
//! * **Popcount bounds**: the remaining-candidate count that drives the
//!   size bound is maintained by decrement and seeded with `count_ones()`.
//! * **Shared weight matrix**: tie-break accumulation reads the graph's
//!   own dense matrix ([`SocialGraph::weight_matrix`]) through the
//!   position → vertex map, skipping both `has_edge` branches and any
//!   per-search weight copy. Only live-edge cells are ever read
//!   (candidates always lie in the common neighborhood of the growing
//!   clique), so the values match what a copied table would have held
//!   and setup does zero weight writes.
//! * **Register-resident candidates**: graphs of at most 256 vertices —
//!   every graph the selector's batch path ever builds — run a
//!   monomorphized [`expand_w`] whose candidate set is a `[u64; W]`
//!   passed down the recursion *by value*. No candidate rows are loaded
//!   or stored at all; intersecting with a neighborhood is `W` `&`s on
//!   (mostly) registers. Wider graphs fall back to the depth-indexed
//!   row walk of [`expand`]. Pick order, bounds, and node accounting are
//!   identical on both paths, so the dispatch is invisible to parity.
//! * **Member-row offsets**: the tie-break fold over the growing clique
//!   walks `mrow` — the members' precomputed weight-matrix row offsets —
//!   so each fold step is one indexed load and one add, with no
//!   `has_edge` branch, no index multiply, and no vertex-id translation
//!   in the loop.
//!
//! Bit-for-bit parity with the reference (pinned by
//! `tests/clique_parity.rs`) holds because the fold accumulates in the
//! same left-to-right member order the reference's fold used, starting
//! from `-0.0` exactly like std's `Sum<f64>` fold, over the identical
//! matrix cells; the `fast-math` feature swaps in a reassociated
//! two-lane sum, waiving that guarantee.

use super::{Clique, CliqueBudget};
use crate::coloring::ColoringScratch;
use crate::SocialGraph;

/// Sentinel for "vertex not in the subset" in the dense position map.
const NO_POS: u32 = u32::MAX;

/// Reusable buffers for repeated clique extractions.
///
/// One workspace amortizes every allocation the search needs — coloring
/// scratch, adjacency rows, candidate rows, member-row offsets, the
/// dense subset-index map — across calls. [`crate::partition::clique_partition_in`]
/// and the selector's batch path hold one and reuse it; the free functions
/// in [`super`] build a throwaway one per call.
///
/// Buffers only ever grow; a workspace that has seen an `n`-vertex graph
/// searches any smaller graph without touching the allocator. Results are
/// independent of workspace history (stale buffer contents are never
/// observable), which `workspace_reuse_across_differently_sized_graphs`
/// and the parity suite both check.
#[derive(Debug, Clone, Default)]
pub struct CliqueWorkspace {
    coloring: ColoringScratch,
    /// Vertex-space adjacency rows (n × w words) of the graph being
    /// searched: input to the coloring and to the order-space re-index.
    vadj: Vec<u64>,
    /// Order-space adjacency rows (n × w words).
    adj: Vec<u64>,
    /// Position → parent-graph vertex id: the row/column of the graph's
    /// weight matrix that order position `p` reads.
    vmap: Vec<usize>,
    /// Depth-indexed candidate rows ((n+1) × w words); used only by the
    /// wide fallback path (`n > 256`) beyond row 0.
    cand: Vec<u64>,
    /// Weight-matrix row offsets (`vmap[m] · gn`) of the members of
    /// `current`, maintained in lockstep, for the tie-break fold.
    mrow: Vec<usize>,
    /// Search order: position → vertex (in vadj index space).
    order: Vec<usize>,
    /// Inverse of `order`: vertex → position.
    pos: Vec<usize>,
    /// Östergård suffix bounds: c[i] = clique number of positions i..n.
    c: Vec<usize>,
    /// Growing clique (order positions) along the current search path.
    current: Vec<usize>,
    /// Best clique found (order positions).
    best: Vec<usize>,
    /// Dense parent-vertex → subset-index map (replaces the reference
    /// implementation's per-call `HashMap`); entries are reset to
    /// `NO_POS` after each subset search.
    subset_pos: Vec<u32>,
    total_nodes: u64,
}

impl CliqueWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        CliqueWorkspace::default()
    }

    /// Branch-and-bound nodes expanded over this workspace's lifetime
    /// (summed across searches) — the benchmark's nodes/sec numerator.
    pub fn nodes_searched(&self) -> u64 {
        self.total_nodes
    }

    /// Finds a maximum clique of `graph` (size first, edge-weight sum as
    /// the tie-break), reusing this workspace's buffers.
    pub fn max_clique(&mut self, graph: &SocialGraph, budget: CliqueBudget) -> Clique {
        let n = graph.vertex_count();
        if n == 0 {
            return Clique {
                vertices: Vec::new(),
                weight_sum: 0.0,
                truncated: false,
            };
        }
        let w = n.div_ceil(64);
        self.vadj.clear();
        self.vadj.resize(n * w, 0);
        for v in 0..n {
            self.vadj[v * w..(v + 1) * w].copy_from_slice(graph.neighbors(v).words());
        }
        self.prepare(n, w);
        self.vmap.clear();
        self.vmap.extend_from_slice(&self.order);
        let truncated = self.search(n, w, graph.weight_matrix(), n, budget);
        let mut vertices: Vec<usize> = self.best.iter().map(|&p| self.order[p]).collect();
        vertices.sort_unstable();
        let weight_sum = graph.weight_sum(&vertices);
        Clique {
            vertices,
            weight_sum,
            truncated,
        }
    }

    /// Finds the maximum clique within `subset` of `graph`'s vertices
    /// (the induced subgraph), mapped back to parent vertex ids.
    ///
    /// Builds the induced adjacency directly into the word rows through a
    /// dense position map — no induced `SocialGraph`, no `HashMap`.
    pub fn max_clique_in_subset(
        &mut self,
        graph: &SocialGraph,
        subset: &[usize],
        budget: CliqueBudget,
    ) -> Clique {
        let n = subset.len();
        if n == 0 {
            return Clique {
                vertices: Vec::new(),
                weight_sum: graph.weight_sum(&[]),
                truncated: false,
            };
        }
        let w = n.div_ceil(64);
        let parent_n = graph.vertex_count();
        if self.subset_pos.len() < parent_n {
            self.subset_pos.resize(parent_n, NO_POS);
        }
        // Last occurrence wins on (degenerate) duplicate subset entries,
        // matching the reference's HashMap insert order.
        for (i, &v) in subset.iter().enumerate() {
            self.subset_pos[v] = i as u32;
        }
        self.vadj.clear();
        self.vadj.resize(n * w, 0);
        for (i, &u) in subset.iter().enumerate() {
            for v in graph.neighbors(u) {
                let j = self.subset_pos[v];
                if j != NO_POS && j as usize > i {
                    let j = j as usize;
                    self.vadj[i * w + j / 64] |= 1u64 << (j % 64);
                    self.vadj[j * w + i / 64] |= 1u64 << (i % 64);
                }
            }
        }
        // Leave the map all-NO_POS for the next call.
        for &v in subset {
            self.subset_pos[v] = NO_POS;
        }
        self.prepare(n, w);
        self.vmap.clear();
        self.vmap.extend(self.order.iter().map(|&p| subset[p]));
        let truncated = self.search(n, w, graph.weight_matrix(), parent_n, budget);
        let mut vertices: Vec<usize> = self.best.iter().map(|&p| subset[self.order[p]]).collect();
        vertices.sort_unstable();
        let weight_sum = graph.weight_sum(&vertices);
        Clique {
            vertices,
            weight_sum,
            truncated,
        }
    }

    /// Colors `vadj`, derives the search order, and builds the
    /// order-space adjacency rows; sizes the candidate and prefix-weight
    /// buffers. Callers fill `vmap` afterwards (it needs the subset map).
    fn prepare(&mut self, n: usize, w: usize) {
        self.coloring.color_rows(n, w, &self.vadj[..n * w]);
        let colors = self.coloring.colors();
        self.order.clear();
        self.order.extend(0..n);
        self.order.sort_by_key(|&v| (colors[v], v));
        self.pos.clear();
        self.pos.resize(n, 0);
        for (p, &v) in self.order.iter().enumerate() {
            self.pos[v] = p;
        }

        if self.adj.len() < n * w {
            self.adj.resize(n * w, 0);
        }
        self.adj[..n * w].fill(0);
        for p in 0..n {
            let v = self.order[p];
            for k in 0..w {
                let mut bits = self.vadj[v * w + k];
                while bits != 0 {
                    let u = k * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let q = self.pos[u];
                    self.adj[p * w + q / 64] |= 1u64 << (q % 64);
                }
            }
        }

        if self.cand.len() < (n + 1) * w {
            self.cand.resize((n + 1) * w, 0);
        }
        self.c.clear();
        self.c.resize(n, 0);
        self.best.clear();
    }

    /// Runs the suffix loop; returns whether the budget truncated it.
    ///
    /// `gw`/`gn` are the parent graph's dense weight matrix and its row
    /// stride (the parent vertex count); `vmap` translates order
    /// positions into its index space.
    fn search(&mut self, n: usize, w: usize, gw: &[f64], gn: usize, budget: CliqueBudget) -> bool {
        let CliqueWorkspace {
            adj,
            vmap,
            cand,
            mrow,
            c,
            current,
            best,
            ..
        } = self;
        let adj = &adj[..n * w];
        let vmap = &vmap[..n];
        let cand = &mut cand[..(n + 1) * w];
        let mut best_weight = f64::NEG_INFINITY;
        let mut nodes: u64 = 0;
        let mut truncated = false;

        for i in (0..n).rev() {
            // Candidate row 0 = neighbors of i among positions i+1..n.
            // Word k covers positions k·64..k·64+64; the suffix mask keeps
            // bits at positions > i.
            let mut root_count = 0usize;
            for k in 0..w {
                let lo = k * 64;
                let mask = if i < lo {
                    u64::MAX
                } else if i + 1 >= lo + 64 {
                    0
                } else {
                    u64::MAX << (i + 1 - lo)
                };
                let row = adj[i * w + k] & mask;
                cand[k] = row;
                root_count += row.count_ones() as usize;
            }
            current.clear();
            current.push(i);
            mrow.clear();
            mrow.push(vmap[i] * gn);
            let root: [u64; 4] = {
                let mut a = [0u64; 4];
                a[..w.min(4)].copy_from_slice(&cand[..w.min(4)]);
                a
            };
            let mut frame = Frame {
                w,
                adj,
                gw,
                gn,
                vmap,
                c: &c[..],
                cand: &mut cand[..],
                mrow,
                current,
                best,
                best_weight: &mut best_weight,
                nodes: &mut nodes,
                max_nodes: budget.max_nodes,
                truncated: &mut truncated,
            };
            // Monomorphized register-resident paths for every width the
            // selector ever produces; the row-walk fallback beyond that.
            match w {
                1 => expand_w::<1>(&mut frame, 0.0, [root[0]]),
                2 => expand_w::<2>(&mut frame, 0.0, [root[0], root[1]]),
                3 => expand_w::<3>(&mut frame, 0.0, [root[0], root[1], root[2]]),
                4 => expand_w::<4>(&mut frame, 0.0, root),
                _ => expand(&mut frame, 0, 0.0, root_count),
            }
            c[i] = best.len();
            if truncated {
                break;
            }
        }
        self.total_nodes += nodes;
        truncated
    }
}

/// Everything one `expand` recursion needs, borrowed once per suffix
/// iteration so the recursive calls carry a single pointer.
struct Frame<'a> {
    w: usize,
    adj: &'a [u64],
    /// Parent graph's dense weight matrix (row-major, stride `gn`).
    gw: &'a [f64],
    gn: usize,
    /// Position → parent vertex id: the matrix row/column for a position.
    vmap: &'a [usize],
    c: &'a [usize],
    cand: &'a mut [u64],
    /// Matrix row offsets of `current`'s members, kept in lockstep.
    mrow: &'a mut Vec<usize>,
    current: &'a mut Vec<usize>,
    best: &'a mut Vec<usize>,
    best_weight: &'a mut f64,
    nodes: &'a mut u64,
    max_nodes: u64,
    truncated: &'a mut bool,
}

/// Records `current` if it beats the best clique (size first, then
/// weight) — identical comparison to the reference.
#[inline]
fn record(f: &mut Frame<'_>, current_weight: f64) {
    let better = f.current.len() > f.best.len()
        || (f.current.len() == f.best.len() && current_weight > *f.best_weight);
    if better {
        f.best.clear();
        f.best.extend_from_slice(f.current);
        *f.best_weight = current_weight;
    }
}

/// Exact pick weight: the weight that the candidate at matrix column
/// `col` adds to the growing clique, folded left-to-right from `-0.0`
/// exactly like std's `Sum<f64>` — the same accumulation order as the
/// reference's fold. `mrow` carries the members' precomputed matrix row
/// offsets.
///
/// Reads member rows rather than the candidate's row: the ≤depth member
/// rows are stable across every pick of a node and along the whole
/// search path, so they stay cached, while the candidate changes per
/// pick and would drag a fresh row through the cache each time on large
/// graphs. The matrix is symmetric, so the two orientations hold
/// identical cells.
#[cfg(not(feature = "fast-math"))]
#[inline]
fn added_weight(gw: &[f64], mrow: &[usize], col: usize) -> f64 {
    let mut acc = -0.0f64;
    for &ro in mrow {
        acc += gw[ro + col];
    }
    acc
}

/// `fast-math` pick weight: reassociated two-lane sum over the same
/// member-row cells. Not bit-identical to the reference fold — excluded
/// from the parity guarantees (`docs/PERF.md`).
#[cfg(feature = "fast-math")]
#[inline]
fn added_weight(gw: &[f64], mrow: &[usize], col: usize) -> f64 {
    let mut lane0 = -0.0f64;
    let mut lane1 = 0.0f64;
    let mut pairs = mrow.chunks_exact(2);
    for pair in &mut pairs {
        lane0 += gw[pair[0] + col];
        lane1 += gw[pair[1] + col];
    }
    if let [ro] = pairs.remainder() {
        lane0 += gw[*ro + col];
    }
    lane0 + lane1
}

/// One branch-and-bound node of the wide fallback path. Depth `d` owns
/// candidate row `d`; `count` is the popcount of the candidate row
/// (maintained by the caller's intersection loop, so entry costs no
/// rescan). All state lives in `f` — steady state performs zero heap
/// allocations (only `record` may grow the `best` vector, bounded by n
/// once).
fn expand(f: &mut Frame<'_>, depth: usize, current_weight: f64, mut count: usize) {
    *f.nodes += 1;
    if *f.nodes > f.max_nodes {
        *f.truncated = true;
        return;
    }
    if count == 0 {
        record(f, current_weight);
        return;
    }
    let w = f.w;
    let row = depth * w;
    let cur_len = f.current.len();
    // Candidates are consumed lowest-position-first. Recursion only
    // writes rows below this one, so each word can be walked from a
    // local copy: no `first_bit` rescan per pick.
    for k in 0..w {
        let mut word = f.cand[row + k];
        while word != 0 {
            let p = k * 64 + word.trailing_zeros() as usize;
            // Size bound: even taking every remaining candidate cannot
            // beat the record size (strict: equal size may still win on
            // weight).
            if cur_len + count < f.best.len() {
                return;
            }
            // Östergård suffix bound.
            let cp = f.c[p];
            if cp > 0 && cur_len + cp < f.best.len() {
                return;
            }
            word &= word - 1;
            f.cand[row + k] = word;
            count -= 1;
            let added = added_weight(f.gw, f.mrow, f.vmap[p]);
            f.current.push(p);
            f.mrow.push(f.vmap[p] * f.gn);
            let mut child_count = 0usize;
            {
                // Child candidates = remaining candidates ∩ N(p), written
                // into row depth+1 with one straight word loop.
                let (head, tail) = f.cand.split_at_mut(row + w);
                let src = &head[row..row + w];
                let dst = &mut tail[..w];
                let arow = &f.adj[p * w..(p + 1) * w];
                for kk in 0..w {
                    let d = src[kk] & arow[kk];
                    dst[kk] = d;
                    child_count += d.count_ones() as usize;
                }
            }
            if child_count == 0 {
                // Inline the leaf child: same node accounting and the
                // same record, without paying for a recursive call.
                *f.nodes += 1;
                if *f.nodes > f.max_nodes {
                    *f.truncated = true;
                } else {
                    record(f, current_weight + added);
                }
            } else {
                expand(f, depth + 1, current_weight + added, child_count);
            }
            f.current.pop();
            f.mrow.pop();
            if *f.truncated {
                return;
            }
        }
    }
    // All candidates consumed without extension: `current` itself is a
    // maximal candidate at this node.
    record(f, current_weight);
}

/// [`expand`] monomorphized for graphs of at most `W · 64` vertices: the
/// whole candidate set travels down the recursion as a `[u64; W]` by
/// value — no candidate-row loads or stores, intersection is `W` `&`s.
/// Pick order, bounds, node accounting, and weight folds are identical
/// to the fallback path, so which one runs is invisible to parity. The
/// selector's batch partition runs almost entirely in `W = 1`: arrival
/// batches and their shrinking residual subsets are small.
fn expand_w<const W: usize>(f: &mut Frame<'_>, current_weight: f64, mut cand: [u64; W]) {
    *f.nodes += 1;
    if *f.nodes > f.max_nodes {
        *f.truncated = true;
        return;
    }
    let mut count: usize = cand.iter().map(|word| word.count_ones() as usize).sum();
    if count == 0 {
        record(f, current_weight);
        return;
    }
    let cur_len = f.current.len();
    // `best` only ever grows inside a child's `record`; the length is
    // re-read after every descent, so the local stays exact.
    let mut best_len = f.best.len();
    for k in 0..W {
        while cand[k] != 0 {
            let p = k * 64 + cand[k].trailing_zeros() as usize;
            // Size bound: even taking every remaining candidate cannot
            // beat the record size (strict: equal size may still win on
            // weight).
            if cur_len + count < best_len {
                return;
            }
            // Östergård suffix bound.
            let cp = f.c[p];
            if cp > 0 && cur_len + cp < best_len {
                return;
            }
            cand[k] &= cand[k] - 1;
            count -= 1;
            let added = added_weight(f.gw, f.mrow, f.vmap[p]);
            f.current.push(p);
            f.mrow.push(f.vmap[p] * f.gn);
            // Child candidates = remaining candidates ∩ N(p), kept in
            // registers end to end.
            let arow = &f.adj[p * W..(p + 1) * W];
            let mut child = [0u64; W];
            let mut child_count = 0usize;
            for (kk, c) in child.iter_mut().enumerate() {
                *c = cand[kk] & arow[kk];
                child_count += c.count_ones() as usize;
            }
            if child_count == 0 {
                // Inline the leaf child, exactly like the fallback path.
                *f.nodes += 1;
                if *f.nodes > f.max_nodes {
                    *f.truncated = true;
                } else {
                    record(f, current_weight + added);
                }
            } else {
                expand_w::<W>(f, current_weight + added, child);
            }
            best_len = f.best.len();
            f.current.pop();
            f.mrow.pop();
            if *f.truncated {
                return;
            }
        }
    }
    record(f, current_weight);
}
