//! Greedy vertex coloring.
//!
//! The paper's clique search "first sorts users by a greedy vertex coloring
//! algorithm" (Section IV-A, citing Östergård). A proper coloring with `c`
//! colors upper-bounds the clique number of any subgraph it covers, which is
//! exactly the pruning bound the branch-and-bound search uses.

use crate::SocialGraph;

/// A proper vertex coloring plus the ordering it induces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coloring {
    /// Color of each vertex, `0..num_colors`.
    pub colors: Vec<usize>,
    /// Number of distinct colors used.
    pub num_colors: usize,
}

impl Coloring {
    /// Vertices sorted by ascending color, ties by ascending index — the
    /// branching order recommended for clique search (vertices of the same
    /// color class are pairwise non-adjacent, so at most one per class can
    /// join any clique).
    pub fn order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.colors.len()).collect();
        order.sort_by_key(|&v| (self.colors[v], v));
        order
    }
}

/// Colors vertices greedily in descending-degree order (Welsh–Powell):
/// each vertex takes the smallest color absent from its neighborhood.
///
/// Runs in `O(V² / 64 + E)` with the bitset adjacency.
///
/// # Example
/// ```
/// # use s3_graph::{SocialGraph, coloring::greedy_coloring};
/// let mut g = SocialGraph::new(3);
/// g.add_edge(0, 1, 1.0)?;
/// g.add_edge(1, 2, 1.0)?;
/// let c = greedy_coloring(&g);
/// assert_eq!(c.num_colors, 2); // a path is 2-colorable
/// assert_ne!(c.colors[0], c.colors[1]);
/// assert_ne!(c.colors[1], c.colors[2]);
/// # Ok::<(), s3_graph::GraphError>(())
/// ```
pub fn greedy_coloring(graph: &SocialGraph) -> Coloring {
    let n = graph.vertex_count();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(graph.degree(v)));

    let mut colors = vec![usize::MAX; n];
    let mut num_colors = 0;
    let mut used = Vec::new();
    for &v in &order {
        used.clear();
        used.resize(num_colors + 1, false);
        for u in graph.neighbors(v) {
            let c = colors[u];
            if c != usize::MAX && c < used.len() {
                used[c] = true;
            }
        }
        let color = used.iter().position(|&taken| !taken).expect("slot exists");
        colors[v] = color;
        num_colors = num_colors.max(color + 1);
    }
    if n == 0 {
        num_colors = 0;
    }
    Coloring { colors, num_colors }
}

/// Reusable buffers for [`greedy_coloring`] over raw bitset word rows.
///
/// [`greedy_coloring`] allocates its order, color, and used-color vectors
/// per call; the clique kernel colors a fresh (sub)graph on every
/// extraction of `clique_partition`, so it keeps one of these in its
/// workspace and recolors in place. [`ColoringScratch::color_rows`]
/// reproduces [`greedy_coloring`] exactly — same Welsh–Powell order, same
/// stable tie-breaks, same smallest-absent-color rule — which the
/// `coloring_scratch_matches_greedy_coloring` test and the clique parity
/// suite both pin.
#[derive(Debug, Clone, Default)]
pub struct ColoringScratch {
    order: Vec<usize>,
    used: Vec<bool>,
    colors: Vec<usize>,
    num_colors: usize,
}

impl ColoringScratch {
    /// Creates an empty scratch; buffers grow on first use and are reused
    /// afterwards.
    pub fn new() -> Self {
        ColoringScratch::default()
    }

    /// Color of each vertex after the last [`ColoringScratch::color_rows`]
    /// call, `0..num_colors`.
    pub fn colors(&self) -> &[usize] {
        &self.colors
    }

    /// Number of colors the last run used.
    pub fn num_colors(&self) -> usize {
        self.num_colors
    }

    /// Greedily colors the `n`-vertex graph whose adjacency is given as
    /// `n` rows of `words_per_row` little-endian `u64` words (vertex `v`'s
    /// row starts at `rows[v * words_per_row]`; bits at or above `n` must
    /// be clear). Returns the number of colors used.
    ///
    /// Semantically identical to [`greedy_coloring`] on the same graph:
    /// vertices are visited in descending-degree order (stable on index),
    /// each taking the smallest color absent from its neighborhood.
    pub fn color_rows(&mut self, n: usize, words_per_row: usize, rows: &[u64]) -> usize {
        debug_assert!(rows.len() >= n * words_per_row);
        let ColoringScratch {
            order,
            used,
            colors,
            num_colors,
        } = self;
        order.clear();
        order.extend(0..n);
        let degree = |v: usize| -> usize {
            rows[v * words_per_row..(v + 1) * words_per_row]
                .iter()
                .map(|w| w.count_ones() as usize)
                .sum()
        };
        order.sort_by_key(|&v| std::cmp::Reverse(degree(v)));

        colors.clear();
        colors.resize(n, usize::MAX);
        *num_colors = 0;
        for &v in order.iter() {
            used.clear();
            used.resize(*num_colors + 1, false);
            for (widx, &word) in rows[v * words_per_row..(v + 1) * words_per_row]
                .iter()
                .enumerate()
            {
                let mut bits = word;
                while bits != 0 {
                    let u = widx * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let c = colors[u];
                    if c != usize::MAX && c < used.len() {
                        used[c] = true;
                    }
                }
            }
            let color = used.iter().position(|&taken| !taken).expect("slot exists");
            colors[v] = color;
            *num_colors = (*num_colors).max(color + 1);
        }
        if n == 0 {
            *num_colors = 0;
        }
        *num_colors
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_proper(graph: &SocialGraph, coloring: &Coloring) {
        for u in 0..graph.vertex_count() {
            for v in graph.neighbors(u) {
                assert_ne!(
                    coloring.colors[u], coloring.colors[v],
                    "edge ({u},{v}) monochromatic"
                );
            }
        }
    }

    #[test]
    fn colors_complete_graph_with_n_colors() {
        let n = 6;
        let mut g = SocialGraph::new(n);
        for u in 0..n {
            for v in u + 1..n {
                g.add_edge(u, v, 1.0).unwrap();
            }
        }
        let c = greedy_coloring(&g);
        assert_proper(&g, &c);
        assert_eq!(c.num_colors, n);
    }

    #[test]
    fn colors_bipartite_with_two() {
        // K_{3,3}
        let mut g = SocialGraph::new(6);
        for u in 0..3 {
            for v in 3..6 {
                g.add_edge(u, v, 1.0).unwrap();
            }
        }
        let c = greedy_coloring(&g);
        assert_proper(&g, &c);
        assert_eq!(c.num_colors, 2);
    }

    #[test]
    fn empty_graph_uses_one_color_per_component_rulebook() {
        let g = SocialGraph::new(4);
        let c = greedy_coloring(&g);
        assert_eq!(c.num_colors, 1);
        assert!(c.colors.iter().all(|&x| x == 0));
        let none = greedy_coloring(&SocialGraph::new(0));
        assert_eq!(none.num_colors, 0);
        assert!(none.order().is_empty());
    }

    #[test]
    fn order_sorts_by_color() {
        let mut g = SocialGraph::new(4);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(2, 3, 1.0).unwrap();
        let c = greedy_coloring(&g);
        assert_proper(&g, &c);
        let order = c.order();
        // colors are non-decreasing along the order
        for w in order.windows(2) {
            assert!(c.colors[w[0]] <= c.colors[w[1]]);
        }
        assert_eq!(order.len(), 4);
    }

    #[test]
    fn coloring_scratch_matches_greedy_coloring() {
        // Deterministic pseudo-random graphs of several shapes; the word
        // path must agree with the BitSet path color-for-color.
        for n in [0usize, 1, 2, 7, 40, 70, 130] {
            let mut g = SocialGraph::new(n);
            for u in 0..n {
                for v in u + 1..n {
                    if (u * 31 + v * 17) % 5 < 2 {
                        g.add_edge(u, v, 1.0).unwrap();
                    }
                }
            }
            let reference = greedy_coloring(&g);
            let words_per_row = n.div_ceil(64);
            let mut rows = vec![0u64; n * words_per_row];
            for v in 0..n {
                rows[v * words_per_row..(v + 1) * words_per_row]
                    .copy_from_slice(g.neighbors(v).words());
            }
            let mut scratch = ColoringScratch::new();
            // Twice, to prove reuse leaves no stale state behind.
            for _ in 0..2 {
                let k = scratch.color_rows(n, words_per_row, &rows);
                assert_eq!(k, reference.num_colors, "n = {n}");
                assert_eq!(scratch.colors(), &reference.colors[..], "n = {n}");
                assert_eq!(scratch.num_colors(), reference.num_colors);
            }
        }
    }

    #[test]
    fn coloring_upper_bounds_clique_number() {
        // Triangle + pendant: clique number 3, greedy should need >= 3 colors.
        let mut g = SocialGraph::new(4);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(1, 2, 1.0).unwrap();
        g.add_edge(0, 2, 1.0).unwrap();
        g.add_edge(2, 3, 1.0).unwrap();
        let c = greedy_coloring(&g);
        assert_proper(&g, &c);
        assert!(c.num_colors >= 3);
    }
}
