//! Social-graph algorithms for the S³ AP-selection scheme.
//!
//! Section IV of the paper reduces user placement to graph problems: users
//! are vertices, an edge joins every pair whose social relation index
//! exceeds 0.3, and the algorithm repeatedly extracts a **maximum clique**
//! (choosing, among equal-sized maximum cliques, the one with the largest
//! edge-weight sum), distributes its members across APs, erases it, and
//! continues until the graph is empty.
//!
//! * [`SocialGraph`] — a weighted undirected graph with bitset adjacency;
//! * [`clique::max_clique`] — Östergård-style branch-and-bound maximum
//!   clique with a greedy-coloring bound, implemented as an
//!   allocation-free word-level kernel ([`clique::CliqueWorkspace`]) with
//!   the original searcher pinned as [`clique::reference`];
//! * [`coloring::greedy_coloring`] — the vertex ordering heuristic the
//!   paper cites for the search;
//! * [`partition::clique_partition`] — the iterative extract-and-erase loop.
//!
//! # Example
//!
//! ```
//! use s3_graph::{SocialGraph, clique, partition};
//!
//! // A triangle {0,1,2} plus a pendant edge {3,4}.
//! let mut g = SocialGraph::new(5);
//! g.add_edge(0, 1, 1.0)?;
//! g.add_edge(1, 2, 1.0)?;
//! g.add_edge(0, 2, 1.0)?;
//! g.add_edge(3, 4, 1.0)?;
//!
//! let best = clique::max_clique(&g);
//! assert_eq!(best.vertices.len(), 3);
//!
//! let parts = partition::clique_partition(&g);
//! assert_eq!(parts[0].vertices.len(), 3); // triangle first
//! assert_eq!(parts[1].vertices.len(), 2); // then the edge
//! # Ok::<(), s3_graph::GraphError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitset;
pub mod clique;
pub mod coloring;
pub mod degeneracy;
mod error;
pub mod partition;
mod social_graph;

pub use bitset::BitSet;
pub use error::GraphError;
pub use social_graph::SocialGraph;
