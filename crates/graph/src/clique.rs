//! Maximum-clique search, Östergård-style (branch-and-bound over a greedy
//! coloring order with per-suffix bounds).
//!
//! Algorithm 1 of the paper repeatedly needs "a maximum clique; if several
//! exist, the one with the largest sum of edge weights". We therefore run
//! the Östergård search with one twist: instead of stopping at the first
//! clique of record size (the classic `found` shortcut), the search
//! continues through ties and keeps the candidate with the larger weight
//! sum, pruning on size exactly as Östergård does. The per-suffix bound
//! `c[i]` (the clique number of the subgraph induced by vertices `i..n` in
//! the search order) is preserved.
//!
//! A node budget caps the worst case; the search degrades gracefully to the
//! best clique found so far when the budget runs out (and reports it).

use crate::coloring::greedy_coloring;
use crate::{BitSet, SocialGraph};

/// A clique found by the search.
#[derive(Debug, Clone, PartialEq)]
pub struct Clique {
    /// Member vertices, ascending.
    pub vertices: Vec<usize>,
    /// Sum of pairwise edge weights inside the clique.
    pub weight_sum: f64,
    /// True when the search exhausted its node budget before proving
    /// optimality (the clique is still valid, possibly sub-optimal).
    pub truncated: bool,
}

impl Clique {
    /// Number of members.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// True for the empty clique (returned only for edgeless/empty input
    /// sets).
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }
}

/// Search limits for [`max_clique_with_budget`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CliqueBudget {
    /// Maximum branch-and-bound nodes to expand.
    pub max_nodes: u64,
}

impl Default for CliqueBudget {
    fn default() -> Self {
        // Generous for the paper's workload: cliques live inside one
        // controller domain's arrival batch (tens of users).
        CliqueBudget {
            max_nodes: 5_000_000,
        }
    }
}

struct Searcher<'g> {
    graph: &'g SocialGraph,
    /// Search order (Östergård iterates suffixes of this order).
    order: Vec<usize>,
    /// Adjacency re-indexed by order position.
    adj: Vec<BitSet>,
    /// c[i] = clique number of the subgraph induced by order positions i..n.
    c: Vec<usize>,
    best: Vec<usize>, // order positions
    best_weight: f64,
    nodes: u64,
    max_nodes: u64,
    truncated: bool,
}

impl<'g> Searcher<'g> {
    fn new(graph: &'g SocialGraph, budget: CliqueBudget) -> Self {
        let n = graph.vertex_count();
        let coloring = greedy_coloring(graph);
        let order = coloring.order();
        let mut pos = vec![0usize; n];
        for (p, &v) in order.iter().enumerate() {
            pos[v] = p;
        }
        let mut adj: Vec<BitSet> = (0..n).map(|_| BitSet::new(n)).collect();
        for v in 0..n {
            for u in graph.neighbors(v) {
                adj[pos[v]].insert(pos[u]);
            }
        }
        Searcher {
            graph,
            order,
            adj,
            c: vec![0; n],
            best: Vec::new(),
            best_weight: f64::NEG_INFINITY,
            nodes: 0,
            max_nodes: budget.max_nodes,
            truncated: false,
        }
    }

    fn expand(&mut self, candidates: &BitSet, current: &mut Vec<usize>, current_weight: f64) {
        self.nodes += 1;
        if self.nodes > self.max_nodes {
            self.truncated = true;
            return;
        }
        if candidates.is_empty() {
            let better = current.len() > self.best.len()
                || (current.len() == self.best.len() && current_weight > self.best_weight);
            if better {
                self.best = current.clone();
                self.best_weight = current_weight;
            }
            return;
        }
        let mut cands = candidates.clone();
        while let Some(p) = cands.first() {
            // Size bound: even taking every remaining candidate cannot beat
            // the record size (strict: equal size may still win on weight).
            if current.len() + cands.len() < self.best.len() {
                return;
            }
            // Östergård suffix bound.
            if self.c[p] > 0 && current.len() + self.c[p] < self.best.len() {
                return;
            }
            cands.remove(p);
            let v = self.order[p];
            let added_weight: f64 = current
                .iter()
                .map(|&q| self.graph.weight(v, self.order[q]))
                .sum();
            current.push(p);
            let next = cands.intersection(&self.adj[p]);
            self.expand(&next, current, current_weight + added_weight);
            current.pop();
            if self.truncated {
                return;
            }
        }
        // All candidates consumed without extension: `current` itself is a
        // maximal candidate at this node.
        let better = current.len() > self.best.len()
            || (current.len() == self.best.len() && current_weight > self.best_weight);
        if better {
            self.best = current.clone();
            self.best_weight = current_weight;
        }
    }

    fn run(mut self) -> Clique {
        let n = self.graph.vertex_count();
        if n == 0 {
            return Clique {
                vertices: Vec::new(),
                weight_sum: 0.0,
                truncated: false,
            };
        }
        // Iterate suffixes largest-first as Östergård prescribes: S_i is the
        // set of order positions i..n; c[i] is the clique number within S_i.
        for i in (0..n).rev() {
            let mut suffix_neighbors = self.adj[i].clone();
            // Restrict to positions > i (the rest of the suffix).
            let mut mask = BitSet::new(n);
            for p in i + 1..n {
                mask.insert(p);
            }
            suffix_neighbors.intersect_with(&mask);
            let mut current = vec![i];
            self.expand(&suffix_neighbors, &mut current, 0.0);
            self.c[i] = self.best.len();
            if self.truncated {
                break;
            }
        }
        let mut vertices: Vec<usize> = self.best.iter().map(|&p| self.order[p]).collect();
        vertices.sort_unstable();
        let weight_sum = self.graph.weight_sum(&vertices);
        Clique {
            vertices,
            weight_sum,
            truncated: self.truncated,
        }
    }
}

/// Finds a maximum clique of `graph`, breaking size ties by the largest
/// pairwise edge-weight sum, with the default node budget.
///
/// Returns the empty clique for a graph with no vertices; for any graph with
/// at least one vertex, the result has at least one member.
///
/// # Example
/// ```
/// # use s3_graph::{SocialGraph, clique::max_clique};
/// let mut g = SocialGraph::new(4);
/// g.add_edge(0, 1, 0.4)?;
/// g.add_edge(1, 2, 0.4)?;
/// g.add_edge(0, 2, 0.4)?;
/// g.add_edge(2, 3, 0.4)?;
/// let c = max_clique(&g);
/// assert_eq!(c.vertices, vec![0, 1, 2]);
/// # Ok::<(), s3_graph::GraphError>(())
/// ```
pub fn max_clique(graph: &SocialGraph) -> Clique {
    max_clique_with_budget(graph, CliqueBudget::default())
}

/// [`max_clique`] with an explicit node budget; `truncated` is set on the
/// result when the budget was exhausted.
pub fn max_clique_with_budget(graph: &SocialGraph, budget: CliqueBudget) -> Clique {
    Searcher::new(graph, budget).run()
}

/// Finds the maximum clique *within a subset* of vertices by building the
/// induced subgraph and mapping the result back. Algorithm 1 uses this when
/// only part of the arrival batch remains to be placed.
pub fn max_clique_in_subset(graph: &SocialGraph, subset: &[usize]) -> Clique {
    max_clique_in_subset_with_budget(graph, subset, CliqueBudget::default())
}

/// [`max_clique_in_subset`] with an explicit node budget.
pub fn max_clique_in_subset_with_budget(
    graph: &SocialGraph,
    subset: &[usize],
    budget: CliqueBudget,
) -> Clique {
    let mut index_of = std::collections::HashMap::with_capacity(subset.len());
    for (i, &v) in subset.iter().enumerate() {
        index_of.insert(v, i);
    }
    let mut sub = SocialGraph::new(subset.len());
    for (i, &u) in subset.iter().enumerate() {
        for v in graph.neighbors(u) {
            if let Some(&j) = index_of.get(&v) {
                if j > i {
                    sub.add_edge(i, j, graph.weight(u, v))
                        .expect("valid subgraph edge");
                }
            }
        }
    }
    let inner = max_clique_with_budget(&sub, budget);
    let mut vertices: Vec<usize> = inner.vertices.iter().map(|&i| subset[i]).collect();
    vertices.sort_unstable();
    Clique {
        weight_sum: graph.weight_sum(&vertices),
        vertices,
        truncated: inner.truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(n: usize, w: f64) -> SocialGraph {
        let mut g = SocialGraph::new(n);
        for u in 0..n {
            for v in u + 1..n {
                g.add_edge(u, v, w).unwrap();
            }
        }
        g
    }

    #[test]
    fn empty_and_singleton() {
        let c = max_clique(&SocialGraph::new(0));
        assert!(c.is_empty());
        let c = max_clique(&SocialGraph::new(1));
        assert_eq!(c.vertices, vec![0]);
        assert_eq!(c.weight_sum, 0.0);
        assert!(!c.truncated);
    }

    #[test]
    fn edgeless_graph_returns_single_vertex() {
        let c = max_clique(&SocialGraph::new(5));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn complete_graph() {
        let g = complete(7, 0.5);
        let c = max_clique(&g);
        assert_eq!(c.vertices, (0..7).collect::<Vec<_>>());
        assert!((c.weight_sum - 21.0 * 0.5).abs() < 1e-12);
    }

    #[test]
    fn triangle_beats_edge() {
        let mut g = SocialGraph::new(5);
        g.add_edge(0, 1, 0.31).unwrap();
        g.add_edge(1, 2, 0.31).unwrap();
        g.add_edge(0, 2, 0.31).unwrap();
        g.add_edge(3, 4, 0.99).unwrap();
        let c = max_clique(&g);
        assert_eq!(c.vertices, vec![0, 1, 2]);
    }

    #[test]
    fn weight_breaks_size_ties() {
        // Two disjoint triangles, the second heavier.
        let mut g = SocialGraph::new(6);
        for (u, v) in [(0, 1), (1, 2), (0, 2)] {
            g.add_edge(u, v, 0.31).unwrap();
        }
        for (u, v) in [(3, 4), (4, 5), (3, 5)] {
            g.add_edge(u, v, 0.9).unwrap();
        }
        let c = max_clique(&g);
        assert_eq!(c.vertices, vec![3, 4, 5]);
        assert!((c.weight_sum - 2.7).abs() < 1e-12);
    }

    #[test]
    fn petersen_graph_clique_number_two() {
        // The Petersen graph is triangle-free with clique number 2.
        let outer = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)];
        let spokes = [(0, 5), (1, 6), (2, 7), (3, 8), (4, 9)];
        let inner = [(5, 7), (7, 9), (9, 6), (6, 8), (8, 5)];
        let mut g = SocialGraph::new(10);
        for (u, v) in outer.iter().chain(&spokes).chain(&inner) {
            g.add_edge(*u, *v, 1.0).unwrap();
        }
        let c = max_clique(&g);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn planted_clique_in_random_graph() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let n = 40;
        let mut rng = StdRng::seed_from_u64(77);
        let mut g = SocialGraph::new(n);
        for u in 0..n {
            for v in u + 1..n {
                if rng.random::<f64>() < 0.2 {
                    g.add_edge(u, v, rng.random_range(0.3..1.0)).unwrap();
                }
            }
        }
        // Plant a 7-clique on vertices 10..17.
        let planted: Vec<usize> = (10..17).collect();
        for (i, &u) in planted.iter().enumerate() {
            for &v in &planted[i + 1..] {
                g.add_edge(u, v, 0.5).unwrap();
            }
        }
        let c = max_clique(&g);
        assert!(c.len() >= 7, "found only {} vertices", c.len());
        assert!(g.is_clique(&c.vertices), "result must be a clique");
        assert!(!c.truncated);
    }

    #[test]
    fn result_is_always_a_clique_on_random_graphs() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 25;
            let mut g = SocialGraph::new(n);
            for u in 0..n {
                for v in u + 1..n {
                    if rng.random::<f64>() < 0.4 {
                        g.add_edge(u, v, rng.random_range(0.0..1.0)).unwrap();
                    }
                }
            }
            let c = max_clique(&g);
            assert!(g.is_clique(&c.vertices), "seed {seed}: not a clique");
            assert!(!c.is_empty());
            // Weight reported must equal the recomputed pairwise sum.
            assert!((c.weight_sum - g.weight_sum(&c.vertices)).abs() < 1e-9);
        }
    }

    #[test]
    fn tiny_budget_truncates_but_stays_valid() {
        let g = complete(20, 1.0);
        let c = max_clique_with_budget(&g, CliqueBudget { max_nodes: 10 });
        assert!(c.truncated);
        assert!(g.is_clique(&c.vertices));
    }

    #[test]
    fn subset_search_maps_back() {
        let mut g = SocialGraph::new(8);
        // Clique on {1, 3, 5}; bigger clique on {0, 2, 4, 6} that must be
        // invisible when we search the subset {1, 3, 5, 7}.
        for (u, v) in [(1, 3), (3, 5), (1, 5)] {
            g.add_edge(u, v, 0.4).unwrap();
        }
        for (u, v) in [(0, 2), (0, 4), (0, 6), (2, 4), (2, 6), (4, 6)] {
            g.add_edge(u, v, 0.4).unwrap();
        }
        let c = max_clique_in_subset(&g, &[1, 3, 5, 7]);
        assert_eq!(c.vertices, vec![1, 3, 5]);
        assert!((c.weight_sum - 1.2).abs() < 1e-12);
    }

    #[test]
    fn subset_of_isolated_vertices() {
        let g = SocialGraph::new(4);
        let c = max_clique_in_subset(&g, &[2, 3]);
        assert_eq!(c.len(), 1);
    }
}
