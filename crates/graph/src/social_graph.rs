//! The weighted undirected social graph of Section IV.
//!
//! Vertices are the users waiting to be allocated; an edge `(u, v)` exists
//! when the social relation index `δ(u, v)` exceeds the paper's 0.3
//! threshold, and the edge weight is `δ(u, v)` itself (used to break ties
//! between equal-sized maximum cliques).

use crate::{BitSet, GraphError};

/// A simple weighted undirected graph with bitset adjacency rows.
///
/// Vertex identity is a dense `usize`; callers keep their own mapping from
/// `UserId` to vertex index (the S³ batch allocator does exactly that).
#[derive(Debug, Clone, PartialEq)]
pub struct SocialGraph {
    n: usize,
    adj: Vec<BitSet>,
    /// Weight matrix, row-major `n × n`; 0.0 where no edge exists.
    weights: Vec<f64>,
    edge_count: usize,
}

impl SocialGraph {
    /// Creates an edgeless graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        SocialGraph {
            n,
            adj: (0..n).map(|_| BitSet::new(n)).collect(),
            weights: vec![0.0; n * n],
            edge_count: 0,
        }
    }

    /// Builds a graph on `n` dense vertices from a pairwise weight
    /// function, bypassing the per-edge [`SocialGraph::add_edge`] checks.
    ///
    /// `weight_of(i, j)` is called exactly once per unordered pair with
    /// `i < j`; returning `Some(w)` inserts the edge `(i, j)` with weight
    /// `w`, returning `None` leaves the pair disconnected. This is the bulk
    /// constructor for callers that already hold a dense vertex numbering —
    /// the S³ batch allocator builds its δ-threshold graph this way from a
    /// compiled model, writing both bitset rows and the weight matrix
    /// directly instead of paying a `Result` round-trip per edge.
    ///
    /// # Panics
    ///
    /// Panics when `weight_of` yields a negative or non-finite weight (the
    /// same inputs [`SocialGraph::add_edge`] rejects).
    pub fn from_pairwise<F>(n: usize, mut weight_of: F) -> SocialGraph
    where
        F: FnMut(usize, usize) -> Option<f64>,
    {
        let mut graph = SocialGraph::new(n);
        for i in 0..n {
            for j in i + 1..n {
                let Some(w) = weight_of(i, j) else {
                    continue;
                };
                assert!(
                    w.is_finite() && w >= 0.0,
                    "pairwise weight must be finite and non-negative, got {w}"
                );
                graph.adj[i].insert(j);
                graph.adj[j].insert(i);
                graph.weights[i * n + j] = w;
                graph.weights[j * n + i] = w;
                graph.edge_count += 1;
            }
        }
        graph
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    fn check_vertex(&self, v: usize) -> Result<(), GraphError> {
        if v >= self.n {
            Err(GraphError::VertexOutOfRange {
                vertex: v,
                count: self.n,
            })
        } else {
            Ok(())
        }
    }

    /// Adds (or re-weights) the undirected edge `(u, v)`.
    ///
    /// # Errors
    ///
    /// [`GraphError::VertexOutOfRange`] when either endpoint is out of
    /// range, [`GraphError::SelfLoop`] when `u == v`, and
    /// [`GraphError::InvalidWeight`] for negative or non-finite weights.
    pub fn add_edge(&mut self, u: usize, v: usize, weight: f64) -> Result<(), GraphError> {
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u });
        }
        if !weight.is_finite() || weight < 0.0 {
            return Err(GraphError::InvalidWeight { weight });
        }
        if self.adj[u].insert(v) {
            self.edge_count += 1;
        }
        self.adj[v].insert(u);
        self.weights[u * self.n + v] = weight;
        self.weights[v * self.n + u] = weight;
        Ok(())
    }

    /// Removes the edge `(u, v)` if present; returns whether it existed.
    ///
    /// # Errors
    ///
    /// [`GraphError::VertexOutOfRange`] when either endpoint is out of range.
    pub fn remove_edge(&mut self, u: usize, v: usize) -> Result<bool, GraphError> {
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        let existed = self.adj[u].remove(v);
        self.adj[v].remove(u);
        if existed {
            self.edge_count -= 1;
            self.weights[u * self.n + v] = 0.0;
            self.weights[v * self.n + u] = 0.0;
        }
        Ok(existed)
    }

    /// True when `(u, v)` is an edge. Out-of-range queries are just `false`.
    #[inline]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        u < self.n && self.adj[u].contains(v)
    }

    /// The weight of `(u, v)`, or 0.0 when absent.
    #[inline]
    pub fn weight(&self, u: usize, v: usize) -> f64 {
        if self.has_edge(u, v) {
            self.weights[u * self.n + v]
        } else {
            0.0
        }
    }

    /// The dense `n × n` row-major weight matrix backing [`Self::weight`].
    ///
    /// Cell `u·n + v` holds the weight of edge `(u, v)`; cells of absent
    /// edges are `0.0`. The clique kernel reads edge weights straight out
    /// of this matrix (it only ever touches cells of live edges), which
    /// keeps the hot path free of the `has_edge` branch and of any copied
    /// weight tables.
    #[inline]
    pub fn weight_matrix(&self) -> &[f64] {
        &self.weights
    }

    /// The adjacency row of `u` as a bitset.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn neighbors(&self, u: usize) -> &BitSet {
        &self.adj[u]
    }

    /// Degree of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn degree(&self, u: usize) -> usize {
        self.adj[u].len()
    }

    /// Vertices with at least one incident edge.
    pub fn non_isolated(&self) -> Vec<usize> {
        (0..self.n).filter(|&v| !self.adj[v].is_empty()).collect()
    }

    /// Sum of `weight(u, v)` over unordered pairs of `vertices` — the
    /// "sum of edges" tie-break of Algorithm 1.
    pub fn weight_sum(&self, vertices: &[usize]) -> f64 {
        let mut total = 0.0;
        for (i, &u) in vertices.iter().enumerate() {
            for &v in &vertices[i + 1..] {
                total += self.weight(u, v);
            }
        }
        total
    }

    /// True when `vertices` induces a complete subgraph.
    pub fn is_clique(&self, vertices: &[usize]) -> bool {
        for (i, &u) in vertices.iter().enumerate() {
            for &v in &vertices[i + 1..] {
                if !self.has_edge(u, v) {
                    return false;
                }
            }
        }
        true
    }

    /// Removes every edge incident to each vertex in `vertices` (the
    /// "erase the clique from the graph" step of Algorithm 1). The vertex
    /// indices stay valid; they just become isolated.
    pub fn isolate(&mut self, vertices: &[usize]) {
        for &u in vertices {
            if u >= self.n {
                continue;
            }
            let neighbors: Vec<usize> = self.adj[u].iter().collect();
            for v in neighbors {
                self.remove_edge(u, v).expect("endpoints validated");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_edge() -> SocialGraph {
        let mut g = SocialGraph::new(5);
        g.add_edge(0, 1, 0.5).unwrap();
        g.add_edge(1, 2, 0.6).unwrap();
        g.add_edge(0, 2, 0.7).unwrap();
        g.add_edge(3, 4, 0.9).unwrap();
        g
    }

    #[test]
    fn add_edge_is_symmetric() {
        let g = triangle_plus_edge();
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert_eq!(g.weight(0, 1), 0.5);
        assert_eq!(g.weight(1, 0), 0.5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.vertex_count(), 5);
    }

    #[test]
    fn re_adding_updates_weight_not_count() {
        let mut g = triangle_plus_edge();
        g.add_edge(0, 1, 0.99).unwrap();
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.weight(0, 1), 0.99);
    }

    #[test]
    fn constructor_errors() {
        let mut g = SocialGraph::new(3);
        assert_eq!(
            g.add_edge(0, 3, 0.5),
            Err(GraphError::VertexOutOfRange {
                vertex: 3,
                count: 3
            })
        );
        assert_eq!(
            g.add_edge(1, 1, 0.5),
            Err(GraphError::SelfLoop { vertex: 1 })
        );
        assert_eq!(
            g.add_edge(0, 1, -0.5),
            Err(GraphError::InvalidWeight { weight: -0.5 })
        );
        assert!(matches!(
            g.add_edge(0, 1, f64::NAN).unwrap_err(),
            GraphError::InvalidWeight { .. }
        ));
    }

    #[test]
    fn remove_edge_round_trip() {
        let mut g = triangle_plus_edge();
        assert!(g.remove_edge(0, 1).unwrap());
        assert!(!g.remove_edge(0, 1).unwrap());
        assert!(!g.has_edge(1, 0));
        assert_eq!(g.weight(0, 1), 0.0);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn degrees_and_neighbors() {
        let g = triangle_plus_edge();
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(3), 1);
        assert_eq!(g.neighbors(1).iter().collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(g.non_isolated(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn weight_sum_over_subset() {
        let g = triangle_plus_edge();
        let total = g.weight_sum(&[0, 1, 2]);
        assert!((total - 1.8).abs() < 1e-12);
        // Non-adjacent pairs contribute zero.
        assert!((g.weight_sum(&[0, 3]) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn clique_detection() {
        let g = triangle_plus_edge();
        assert!(g.is_clique(&[0, 1, 2]));
        assert!(g.is_clique(&[3, 4]));
        assert!(g.is_clique(&[2])); // singletons are cliques
        assert!(g.is_clique(&[])); // and so is the empty set
        assert!(!g.is_clique(&[0, 1, 3]));
    }

    #[test]
    fn isolate_erases_incident_edges() {
        let mut g = triangle_plus_edge();
        g.isolate(&[0]);
        assert_eq!(g.degree(0), 0);
        assert!(g.has_edge(1, 2), "unrelated edges survive");
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.non_isolated(), vec![1, 2, 3, 4]);
        // Out-of-range vertices in the list are ignored.
        g.isolate(&[99]);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn empty_graph() {
        let g = SocialGraph::new(0);
        assert_eq!(g.vertex_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert!(g.non_isolated().is_empty());
    }

    #[test]
    fn from_pairwise_matches_add_edge_loop() {
        let weight = |i: usize, j: usize| {
            let w = ((i * 7 + j * 13) % 10) as f64 / 10.0;
            (w > 0.3).then_some(w)
        };
        let bulk = SocialGraph::from_pairwise(6, weight);
        let mut looped = SocialGraph::new(6);
        for i in 0..6 {
            for j in i + 1..6 {
                if let Some(w) = weight(i, j) {
                    looped.add_edge(i, j, w).unwrap();
                }
            }
        }
        assert_eq!(bulk, looped);
    }

    #[test]
    fn from_pairwise_empty_and_edgeless() {
        assert_eq!(SocialGraph::from_pairwise(0, |_, _| None).vertex_count(), 0);
        let g = SocialGraph::from_pairwise(4, |_, _| None);
        assert_eq!(g.edge_count(), 0);
        assert!(g.non_isolated().is_empty());
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn from_pairwise_rejects_invalid_weight() {
        let _ = SocialGraph::from_pairwise(2, |_, _| Some(-1.0));
    }
}
