//! Iterative clique extraction — the outer loop of the paper's Algorithm 1.
//!
//! "We pick a maximum clique each time in the graph and delete all vertices
//! in the clique and all corresponding edges from the graph until there are
//! no more vertices left." Isolated vertices (users with no strong social
//! tie) fall out as singleton cliques at the end, matching the algorithm's
//! LLF fallback for socially unconnected users.

use crate::clique::{Clique, CliqueBudget, CliqueWorkspace};
use crate::SocialGraph;

/// Decomposes `graph` into vertex-disjoint cliques, largest (and, among
/// equal sizes, heaviest) first. Consumes a clone of the graph; the input
/// is untouched.
///
/// The result covers every vertex exactly once; trailing entries are
/// singletons for isolated vertices, ordered by ascending vertex index.
///
/// # Example
/// ```
/// # use s3_graph::{SocialGraph, partition::clique_partition};
/// let mut g = SocialGraph::new(4);
/// g.add_edge(0, 1, 0.5)?;
/// let parts = clique_partition(&g);
/// let sizes: Vec<usize> = parts.iter().map(|c| c.vertices.len()).collect();
/// assert_eq!(sizes, vec![2, 1, 1]);
/// # Ok::<(), s3_graph::GraphError>(())
/// ```
pub fn clique_partition(graph: &SocialGraph) -> Vec<Clique> {
    clique_partition_with_budget(graph, CliqueBudget::default())
}

/// [`clique_partition`] with an explicit per-extraction node budget.
pub fn clique_partition_with_budget(graph: &SocialGraph, budget: CliqueBudget) -> Vec<Clique> {
    clique_partition_in(graph, budget, &mut CliqueWorkspace::new())
}

/// [`clique_partition_with_budget`] reusing a caller-held
/// [`CliqueWorkspace`], so the repeated extractions share one set of
/// adjacency/candidate/weight buffers instead of re-allocating them per
/// clique. This is the entry point for hot callers (the selector's batch
/// path); output is identical to the one-shot functions.
pub fn clique_partition_in(
    graph: &SocialGraph,
    budget: CliqueBudget,
    ws: &mut CliqueWorkspace,
) -> Vec<Clique> {
    let mut work = graph.clone();
    let mut out = Vec::new();
    let mut remaining: Vec<bool> = vec![true; graph.vertex_count()];

    loop {
        // Only vertices that still have edges can form multi-member cliques.
        let active = work.non_isolated();
        let active: Vec<usize> = active.into_iter().filter(|&v| remaining[v]).collect();
        if active.is_empty() {
            break;
        }
        // Search within the still-active subgraph. A truncated extraction
        // still removes a valid clique, so progress is guaranteed even when
        // the budget bites.
        let clique = ws.max_clique_in_subset(&work, &active, budget);
        if clique.len() < 2 {
            break;
        }
        for &v in &clique.vertices {
            remaining[v] = false;
        }
        work.isolate(&clique.vertices);
        out.push(clique);
    }

    // Remaining vertices are singletons.
    for (v, alive) in remaining.iter().enumerate() {
        if *alive {
            out.push(Clique {
                vertices: vec![v],
                weight_sum: 0.0,
                truncated: false,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_each_vertex_once() {
        let mut g = SocialGraph::new(7);
        for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (2, 3)] {
            g.add_edge(u, v, 0.5).unwrap();
        }
        let parts = clique_partition(&g);
        let mut seen = [false; 7];
        for c in &parts {
            for &v in &c.vertices {
                assert!(!seen[v], "vertex {v} appears twice");
                seen[v] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every vertex covered");
    }

    #[test]
    fn extracts_triangle_before_edge() {
        let mut g = SocialGraph::new(5);
        for (u, v) in [(0, 1), (1, 2), (0, 2)] {
            g.add_edge(u, v, 0.31).unwrap();
        }
        g.add_edge(3, 4, 0.99).unwrap();
        let parts = clique_partition(&g);
        assert_eq!(parts[0].vertices, vec![0, 1, 2]);
        assert_eq!(parts[1].vertices, vec![3, 4]);
        assert_eq!(parts.len(), 2);
    }

    #[test]
    fn all_isolated_yields_singletons() {
        let g = SocialGraph::new(3);
        let parts = clique_partition(&g);
        assert_eq!(parts.len(), 3);
        assert!(parts.iter().all(|c| c.vertices.len() == 1));
        assert_eq!(parts[0].vertices, vec![0]);
    }

    #[test]
    fn empty_graph_yields_no_cliques() {
        assert!(clique_partition(&SocialGraph::new(0)).is_empty());
    }

    #[test]
    fn complete_graph_is_one_clique() {
        let mut g = SocialGraph::new(5);
        for u in 0..5 {
            for v in u + 1..5 {
                g.add_edge(u, v, 1.0).unwrap();
            }
        }
        let parts = clique_partition(&g);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].vertices, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn input_graph_is_untouched() {
        let mut g = SocialGraph::new(3);
        g.add_edge(0, 1, 0.5).unwrap();
        let before = g.clone();
        let _ = clique_partition(&g);
        assert_eq!(g, before);
    }

    #[test]
    fn overlapping_cliques_remove_shared_vertices_correctly() {
        // Two triangles sharing vertex 2: {0,1,2} and {2,3,4}. After
        // extracting one triangle, the other collapses to an edge.
        let mut g = SocialGraph::new(5);
        for (u, v) in [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)] {
            g.add_edge(u, v, 0.4).unwrap();
        }
        let parts = clique_partition(&g);
        let sizes: Vec<usize> = parts.iter().map(|c| c.vertices.len()).collect();
        assert_eq!(sizes, vec![3, 2]);
    }
}
