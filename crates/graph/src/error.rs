//! Error type for graph construction.

use core::fmt;

/// Errors raised by [`crate::SocialGraph`] mutation methods.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GraphError {
    /// A vertex index was `>= vertex_count`.
    VertexOutOfRange {
        /// The offending vertex.
        vertex: usize,
        /// Number of vertices in the graph.
        count: usize,
    },
    /// A self-loop was requested; the social graph is simple.
    SelfLoop {
        /// The vertex that tried to join itself.
        vertex: usize,
    },
    /// An edge weight was non-finite or negative.
    InvalidWeight {
        /// The offending weight.
        weight: f64,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, count } => {
                write!(
                    f,
                    "vertex {vertex} out of range for graph with {count} vertices"
                )
            }
            GraphError::SelfLoop { vertex } => {
                write!(f, "self-loop on vertex {vertex} not allowed")
            }
            GraphError::InvalidWeight { weight } => {
                write!(f, "edge weight {weight} must be finite and non-negative")
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            GraphError::VertexOutOfRange {
                vertex: 9,
                count: 4
            }
            .to_string(),
            "vertex 9 out of range for graph with 4 vertices"
        );
        assert_eq!(
            GraphError::SelfLoop { vertex: 2 }.to_string(),
            "self-loop on vertex 2 not allowed"
        );
        assert!(GraphError::InvalidWeight { weight: -1.0 }
            .to_string()
            .contains("-1"));
    }
}
