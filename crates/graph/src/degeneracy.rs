//! Degeneracy (smallest-last) ordering.
//!
//! The degeneracy `d` of a graph is the smallest number such that every
//! subgraph has a vertex of degree ≤ `d`. It yields two useful facts for
//! the clique machinery:
//!
//! * the clique number is at most `d + 1` — a cheap upper bound to sanity-
//!   check the branch-and-bound search;
//! * coloring greedily in smallest-last order needs at most `d + 1` colors,
//!   often fewer than Welsh–Powell on sparse social graphs.

use crate::coloring::Coloring;
use crate::SocialGraph;

/// Result of a degeneracy computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Degeneracy {
    /// The degeneracy `d`.
    pub degeneracy: usize,
    /// Smallest-last vertex order (the vertex removed first comes last).
    pub order: Vec<usize>,
}

/// Computes the degeneracy and a smallest-last ordering with the standard
/// bucket algorithm, `O(V + E)`.
pub fn degeneracy_order(graph: &SocialGraph) -> Degeneracy {
    let n = graph.vertex_count();
    if n == 0 {
        return Degeneracy {
            degeneracy: 0,
            order: Vec::new(),
        };
    }
    let mut degree: Vec<usize> = (0..n).map(|v| graph.degree(v)).collect();
    let max_degree = degree.iter().copied().max().unwrap_or(0);
    // Buckets of vertices by current degree.
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); max_degree + 1];
    for (v, &d) in degree.iter().enumerate() {
        buckets[d].push(v);
    }
    let mut removed = vec![false; n];
    let mut removal = Vec::with_capacity(n);
    let mut degeneracy = 0;
    for _ in 0..n {
        // Lowest bucket with a live entry. Buckets hold stale entries
        // (vertices whose degree dropped after insertion); skip them.
        let mut d = 0;
        let v = loop {
            match buckets[d].pop() {
                Some(candidate) if !removed[candidate] && degree[candidate] == d => {
                    break candidate;
                }
                Some(_stale) => continue,
                None => d += 1,
            }
        };
        degeneracy = degeneracy.max(d);
        removed[v] = true;
        removal.push(v);
        for u in graph.neighbors(v) {
            if !removed[u] {
                degree[u] -= 1;
                buckets[degree[u]].push(u);
            }
        }
    }
    // Smallest-last order = reverse removal order.
    removal.reverse();
    Degeneracy {
        degeneracy,
        order: removal,
    }
}

/// Greedy coloring along the smallest-last order: uses at most
/// `degeneracy + 1` colors.
pub fn degeneracy_coloring(graph: &SocialGraph) -> Coloring {
    let n = graph.vertex_count();
    let Degeneracy { order, .. } = degeneracy_order(graph);
    let mut colors = vec![usize::MAX; n];
    let mut num_colors = 0;
    let mut used = Vec::new();
    for &v in &order {
        used.clear();
        used.resize(num_colors + 1, false);
        for u in graph.neighbors(v) {
            let c = colors[u];
            if c != usize::MAX && c < used.len() {
                used[c] = true;
            }
        }
        let color = used.iter().position(|&taken| !taken).expect("slot exists");
        colors[v] = color;
        num_colors = num_colors.max(color + 1);
    }
    if n == 0 {
        num_colors = 0;
    }
    Coloring { colors, num_colors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clique::max_clique;

    fn assert_proper(graph: &SocialGraph, coloring: &Coloring) {
        for u in 0..graph.vertex_count() {
            for v in graph.neighbors(u) {
                assert_ne!(coloring.colors[u], coloring.colors[v]);
            }
        }
    }

    #[test]
    fn tree_has_degeneracy_one() {
        // A path: 0-1-2-3-4.
        let mut g = SocialGraph::new(5);
        for v in 0..4 {
            g.add_edge(v, v + 1, 1.0).unwrap();
        }
        let d = degeneracy_order(&g);
        assert_eq!(d.degeneracy, 1);
        assert_eq!(d.order.len(), 5);
        let c = degeneracy_coloring(&g);
        assert_proper(&g, &c);
        assert_eq!(c.num_colors, 2, "trees are (d+1)-colorable");
    }

    #[test]
    fn complete_graph_degeneracy() {
        let n = 6;
        let mut g = SocialGraph::new(n);
        for u in 0..n {
            for v in u + 1..n {
                g.add_edge(u, v, 1.0).unwrap();
            }
        }
        let d = degeneracy_order(&g);
        assert_eq!(d.degeneracy, n - 1);
        let c = degeneracy_coloring(&g);
        assert_proper(&g, &c);
        assert_eq!(c.num_colors, n);
    }

    #[test]
    fn empty_and_edgeless() {
        let d = degeneracy_order(&SocialGraph::new(0));
        assert_eq!(d.degeneracy, 0);
        assert!(d.order.is_empty());
        let d = degeneracy_order(&SocialGraph::new(4));
        assert_eq!(d.degeneracy, 0);
        assert_eq!(d.order.len(), 4);
        let c = degeneracy_coloring(&SocialGraph::new(4));
        assert_eq!(c.num_colors, 1);
    }

    #[test]
    fn degeneracy_plus_one_bounds_clique_number() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        for seed in 0..8u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 20;
            let mut g = SocialGraph::new(n);
            for u in 0..n {
                for v in u + 1..n {
                    if rng.random::<f64>() < 0.3 {
                        g.add_edge(u, v, 1.0).unwrap();
                    }
                }
            }
            let d = degeneracy_order(&g);
            let clique = max_clique(&g);
            assert!(
                clique.len() <= d.degeneracy + 1,
                "seed {seed}: clique {} > degeneracy+1 {}",
                clique.len(),
                d.degeneracy + 1
            );
            let c = degeneracy_coloring(&g);
            assert_proper(&g, &c);
            assert!(c.num_colors <= d.degeneracy + 1);
        }
    }

    #[test]
    fn order_is_a_permutation() {
        let mut g = SocialGraph::new(7);
        for (u, v) in [(0, 1), (1, 2), (2, 0), (3, 4)] {
            g.add_edge(u, v, 1.0).unwrap();
        }
        let d = degeneracy_order(&g);
        let mut sorted = d.order;
        sorted.sort_unstable();
        assert_eq!(sorted, (0..7).collect::<Vec<_>>());
    }
}
