//! Old-vs-new clique parity: the word-level kernel must reproduce the
//! pinned [`s3_graph::clique::reference`] searcher *bit for bit* —
//! identical member vertices, identical size/weight tie-breaks, identical
//! `truncated` flags under node budgets, and byte-identical
//! `clique_partition` output (weight sums compared via `f64::to_bits`).
//!
//! The whole suite is compiled out under the `fast-math` feature, which
//! reassociates the kernel's weight accumulation and explicitly waives
//! the bit-for-bit guarantee (see `docs/PERF.md`).
#![cfg(not(feature = "fast-math"))]

use proptest::prelude::*;

use s3_graph::clique::{reference, Clique, CliqueBudget, CliqueWorkspace};
use s3_graph::partition::clique_partition_with_budget;
use s3_graph::SocialGraph;

fn graph_from_edges(n: usize, edges: &[(usize, usize, f64)]) -> SocialGraph {
    let mut g = SocialGraph::new(n);
    for &(u, v, w) in edges {
        if n > 0 && u % n != v % n {
            g.add_edge(u % n, v % n, w).unwrap();
        }
    }
    g
}

/// Bit-level clique equality: vertices, `to_bits` of the weight sum, and
/// the truncation flag.
fn assert_cliques_identical(kernel: &Clique, oracle: &Clique) -> Result<(), TestCaseError> {
    prop_assert_eq!(&kernel.vertices, &oracle.vertices);
    prop_assert_eq!(
        kernel.weight_sum.to_bits(),
        oracle.weight_sum.to_bits(),
        "weight_sum differs: kernel {} vs reference {}",
        kernel.weight_sum,
        oracle.weight_sum
    );
    prop_assert_eq!(kernel.truncated, oracle.truncated);
    Ok(())
}

/// Edge strategy: endpoints over `0..n` (self-pairs dropped by the
/// builder), weights spanning several magnitudes so accumulation-order
/// differences would actually show up in the low mantissa bits.
fn edges(n: usize, max_edges: usize) -> impl Strategy<Value = Vec<(usize, usize, f64)>> {
    prop::collection::vec((0..n, 0..n, 0.01f64..1.0), 0..max_edges)
}

proptest! {
    /// Full-graph searches agree exactly, including on a reused workspace.
    #[test]
    fn max_clique_matches_reference(e in edges(18, 110)) {
        let g = graph_from_edges(18, &e);
        let oracle = reference::max_clique(&g);
        let fresh = s3_graph::clique::max_clique(&g);
        assert_cliques_identical(&fresh, &oracle)?;
        // Same search through a dirtied workspace: run a different graph
        // first so stale buffer contents would be caught.
        let mut ws = CliqueWorkspace::new();
        let mut decoy = SocialGraph::new(30);
        for u in 0..30usize {
            for v in u + 1..30 {
                if (u + v) % 3 == 0 {
                    decoy.add_edge(u, v, 0.7).unwrap();
                }
            }
        }
        let _ = ws.max_clique(&decoy, CliqueBudget::default());
        let reused = ws.max_clique(&g, CliqueBudget::default());
        assert_cliques_identical(&reused, &oracle)?;
    }

    /// Subset searches agree exactly — including the dense position map
    /// replacing the reference's per-call HashMap.
    #[test]
    fn subset_search_matches_reference(
        e in edges(16, 90),
        subset_bits in 0u16..u16::MAX,
    ) {
        let g = graph_from_edges(16, &e);
        let subset: Vec<usize> = (0..16).filter(|&v| subset_bits & (1 << v) != 0).collect();
        let oracle = reference::max_clique_in_subset(&g, &subset);
        let kernel = s3_graph::clique::max_clique_in_subset(&g, &subset);
        assert_cliques_identical(&kernel, &oracle)?;
    }

    /// Budget-truncated searches agree exactly: the kernel counts search
    /// nodes in the same order, so it gives up at the same node with the
    /// same partial best.
    #[test]
    fn truncated_search_matches_reference(
        e in edges(14, 90),
        max_nodes in 1u64..200,
    ) {
        let g = graph_from_edges(14, &e);
        let budget = CliqueBudget { max_nodes };
        let oracle = reference::max_clique_with_budget(&g, budget);
        let kernel = s3_graph::clique::max_clique_with_budget(&g, budget);
        assert_cliques_identical(&kernel, &oracle)?;
    }

    /// The full extract-and-erase partition is byte-identical, clique by
    /// clique, even when the per-extraction budget truncates.
    #[test]
    fn clique_partition_matches_reference(
        e in edges(15, 80),
        max_nodes in 0u64..300,
    ) {
        let g = graph_from_edges(15, &e);
        // 0 stands in for "no explicit budget" (the generous default).
        let budget = if max_nodes == 0 {
            CliqueBudget::default()
        } else {
            CliqueBudget { max_nodes }
        };
        let oracle = reference::clique_partition_with_budget(&g, budget);
        let kernel = clique_partition_with_budget(&g, budget);
        prop_assert_eq!(kernel.len(), oracle.len());
        for (k, o) in kernel.iter().zip(&oracle) {
            assert_cliques_identical(k, o)?;
        }
    }

    /// One workspace driven across a random sequence of searches stays
    /// stateless: every result matches a fresh reference run.
    #[test]
    fn workspace_is_stateless_across_search_sequences(
        graphs in prop::collection::vec((2usize..12, edges(12, 40)), 1..6),
    ) {
        let mut ws = CliqueWorkspace::new();
        for (n, e) in graphs {
            let g = graph_from_edges(n, &e);
            let oracle = reference::max_clique(&g);
            let kernel = ws.max_clique(&g, CliqueBudget::default());
            assert_cliques_identical(&kernel, &oracle)?;
            let subset: Vec<usize> = (0..n).step_by(2).collect();
            let oracle_sub = reference::max_clique_in_subset(&g, &subset);
            let kernel_sub = ws.max_clique_in_subset(&g, &subset, CliqueBudget::default());
            assert_cliques_identical(&kernel_sub, &oracle_sub)?;
        }
    }
}

/// Degenerate shapes the strategies rarely hit, pinned explicitly.
#[test]
fn degenerate_shapes_match_reference() {
    // Empty graph / empty subset.
    let empty = SocialGraph::new(0);
    assert_eq!(
        s3_graph::clique::max_clique(&empty),
        reference::max_clique(&empty)
    );
    let g = graph_from_edges(6, &[(0, 1, 0.5), (1, 2, 0.25), (0, 2, 0.125)]);
    assert_eq!(
        s3_graph::clique::max_clique_in_subset(&g, &[]),
        reference::max_clique_in_subset(&g, &[])
    );
    // Singleton subset; subset of isolated vertices.
    assert_eq!(
        s3_graph::clique::max_clique_in_subset(&g, &[4]),
        reference::max_clique_in_subset(&g, &[4])
    );
    assert_eq!(
        s3_graph::clique::max_clique_in_subset(&g, &[3, 4, 5]),
        reference::max_clique_in_subset(&g, &[3, 4, 5])
    );
    // A graph wide enough to span two words.
    let mut wide = SocialGraph::new(70);
    for u in 0..70usize {
        for v in u + 1..70 {
            if (u * 7 + v * 13) % 4 == 0 {
                wide.add_edge(u, v, 0.5 + (u as f64) / 140.0).unwrap();
            }
        }
    }
    let oracle = reference::max_clique(&wide);
    let kernel = s3_graph::clique::max_clique(&wide);
    assert_eq!(kernel.vertices, oracle.vertices);
    assert_eq!(kernel.weight_sum.to_bits(), oracle.weight_sum.to_bits());
    assert_eq!(kernel.truncated, oracle.truncated);
}
