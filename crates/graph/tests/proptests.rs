//! Property tests for the graph algorithms: model-based bitset checks,
//! proper colorings, and clique-search invariants against a brute-force
//! oracle on small graphs.

use std::collections::HashSet;

use proptest::prelude::*;

use s3_graph::clique::{max_clique, max_clique_in_subset};
use s3_graph::coloring::greedy_coloring;
use s3_graph::{BitSet, SocialGraph};

/// Brute-force maximum clique size on ≤ 16 vertices.
fn brute_force_clique_number(g: &SocialGraph) -> usize {
    let n = g.vertex_count();
    assert!(n <= 16);
    let mut best = 0;
    for mask in 0u32..(1 << n) {
        let members: Vec<usize> = (0..n).filter(|&v| mask & (1 << v) != 0).collect();
        if members.len() > best && g.is_clique(&members) {
            best = members.len();
        }
    }
    best
}

fn graph_from_edges(n: usize, edges: &[(usize, usize, f64)]) -> SocialGraph {
    let mut g = SocialGraph::new(n);
    for &(u, v, w) in edges {
        if u != v {
            g.add_edge(u % n, v % n, w).unwrap();
        }
    }
    g
}

proptest! {
    #[test]
    fn bitset_behaves_like_hashset(ops in prop::collection::vec((0usize..3, 0usize..100), 0..300)) {
        let mut bitset = BitSet::new(100);
        let mut model: HashSet<usize> = HashSet::new();
        for (op, value) in ops {
            match op {
                0 => {
                    prop_assert_eq!(bitset.insert(value), model.insert(value));
                }
                1 => {
                    prop_assert_eq!(bitset.remove(value), model.remove(&value));
                }
                _ => {
                    prop_assert_eq!(bitset.contains(value), model.contains(&value));
                }
            }
            prop_assert_eq!(bitset.len(), model.len());
        }
        let mut collected: Vec<usize> = bitset.iter().collect();
        let mut expected: Vec<usize> = model.into_iter().collect();
        expected.sort_unstable();
        collected.sort_unstable();
        prop_assert_eq!(collected, expected);
    }

    #[test]
    fn bitset_set_algebra_matches_hashsets(
        a in prop::collection::vec(0usize..64, 0..40),
        b in prop::collection::vec(0usize..64, 0..40),
    ) {
        let mut sa = BitSet::new(64);
        let mut sb = BitSet::new(64);
        let ha: HashSet<usize> = a.iter().copied().collect();
        let hb: HashSet<usize> = b.iter().copied().collect();
        for v in &a { sa.insert(*v); }
        for v in &b { sb.insert(*v); }

        let inter: HashSet<usize> = sa.intersection(&sb).iter().collect();
        prop_assert_eq!(inter, ha.intersection(&hb).copied().collect::<HashSet<_>>());

        let mut union = sa.clone();
        union.union_with(&sb);
        let union: HashSet<usize> = union.iter().collect();
        prop_assert_eq!(union, ha.union(&hb).copied().collect::<HashSet<_>>());

        let mut diff = sa.clone();
        diff.difference_with(&sb);
        let diff: HashSet<usize> = diff.iter().collect();
        prop_assert_eq!(diff, ha.difference(&hb).copied().collect::<HashSet<_>>());
    }

    #[test]
    fn coloring_is_always_proper(
        edges in prop::collection::vec((0usize..20, 0usize..20, 0.1f64..1.0), 0..120)
    ) {
        let g = graph_from_edges(20, &edges);
        let c = greedy_coloring(&g);
        for u in 0..20 {
            for v in g.neighbors(u) {
                prop_assert_ne!(c.colors[u], c.colors[v]);
            }
        }
        prop_assert!(c.num_colors >= 1);
        prop_assert!(c.num_colors <= 20);
    }

    #[test]
    fn max_clique_matches_brute_force(
        edges in prop::collection::vec((0usize..10, 0usize..10, 0.1f64..1.0), 0..40)
    ) {
        let g = graph_from_edges(10, &edges);
        let found = max_clique(&g);
        let oracle = brute_force_clique_number(&g);
        // On a graph with ≥1 vertex the empty clique never wins.
        prop_assert_eq!(found.len(), oracle.max(1));
        prop_assert!(g.is_clique(&found.vertices));
    }

    #[test]
    fn coloring_upper_bounds_clique_number(
        edges in prop::collection::vec((0usize..12, 0usize..12, 0.1f64..1.0), 0..60)
    ) {
        let g = graph_from_edges(12, &edges);
        let c = greedy_coloring(&g);
        let clique = max_clique(&g);
        prop_assert!(
            c.num_colors >= clique.len(),
            "coloring used {} colors but clique number is {}",
            c.num_colors,
            clique.len()
        );
    }

    #[test]
    fn subset_clique_never_exceeds_full_clique(
        edges in prop::collection::vec((0usize..12, 0usize..12, 0.1f64..1.0), 0..60),
        subset in prop::collection::vec(0usize..12, 1..8),
    ) {
        let g = graph_from_edges(12, &edges);
        let subset: Vec<usize> = {
            let s: HashSet<usize> = subset.into_iter().collect();
            s.into_iter().collect()
        };
        let sub = max_clique_in_subset(&g, &subset);
        let full = max_clique(&g);
        prop_assert!(sub.len() <= full.len());
        prop_assert!(sub.vertices.iter().all(|v| subset.contains(v)));
        prop_assert!(g.is_clique(&sub.vertices));
    }
}
