//! Process-level golden test for `s3wlan replay --stream`: over the same
//! generated trace, the streaming path must produce a session CSV *and* a
//! stable-class metrics snapshot byte-identical to the in-memory path, at
//! `--threads 1` and `--threads 8`. One process per run — the metrics
//! registry is process-wide, so stream/memory parity can only be compared
//! across processes.

use std::path::{Path, PathBuf};
use std::process::Command;

fn s3wlan(args: &[&str]) -> std::process::Output {
    let output = Command::new(env!("CARGO_BIN_EXE_s3wlan"))
        .args(args)
        .output()
        .expect("launch s3wlan");
    assert!(
        output.status.success(),
        "s3wlan {args:?} failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    output
}

struct Replay {
    sessions: Vec<u8>,
    metrics: String,
    stdout: String,
}

fn replay(demands: &Path, dir: &Path, policy: &str, threads: usize, stream: bool) -> Replay {
    let tag = format!(
        "{policy}_t{threads}_{}",
        if stream { "stream" } else { "mem" }
    );
    let sessions = dir.join(format!("sessions_{tag}.csv"));
    let metrics = dir.join(format!("metrics_{tag}.json"));
    let mut args: Vec<String> = [
        "replay",
        "--demands",
        &demands.display().to_string(),
        "--policy",
        policy,
        "--out",
        &sessions.display().to_string(),
        "--train-days",
        "3",
        "--aps-per-building",
        "3",
        "--threads",
        &threads.to_string(),
        "--metrics-out",
        &metrics.display().to_string(),
    ]
    .map(str::to_string)
    .to_vec();
    if stream {
        args.push("--stream".to_string());
    }
    let args: Vec<&str> = args.iter().map(String::as_str).collect();
    let output = s3wlan(&args);
    Replay {
        sessions: std::fs::read(&sessions).unwrap(),
        metrics: std::fs::read_to_string(&metrics).unwrap(),
        stdout: String::from_utf8(output.stdout).unwrap(),
    }
}

fn generate(dir: &Path) -> PathBuf {
    let demands = dir.join("demands.csv");
    s3wlan(&[
        "generate",
        "--out",
        &demands.display().to_string(),
        "--users",
        "120",
        "--buildings",
        "2",
        "--aps-per-building",
        "3",
        "--days",
        "5",
        "--seed",
        "17",
    ]);
    demands
}

#[test]
fn streamed_replay_matches_in_memory_byte_for_byte() {
    let dir = std::env::temp_dir().join("s3_cli_stream_replay");
    std::fs::create_dir_all(&dir).unwrap();
    let demands = generate(&dir);

    for policy in ["llf", "s3"] {
        for threads in [1, 8] {
            let memory = replay(&demands, &dir, policy, threads, false);
            let streamed = replay(&demands, &dir, policy, threads, true);
            assert_eq!(
                memory.sessions, streamed.sessions,
                "{policy} t{threads}: session CSVs must be byte-identical"
            );
            assert_eq!(
                memory.metrics, streamed.metrics,
                "{policy} t{threads}: stable snapshots must be byte-identical"
            );
            assert!(
                streamed.stdout.contains("(streamed)"),
                "{}",
                streamed.stdout
            );
            // Both paths report the same balance index on stdout.
            let balance = |s: &str| {
                s.lines()
                    .find(|l| l.contains("balance index"))
                    .map(str::to_string)
            };
            assert_eq!(
                balance(&memory.stdout),
                balance(&streamed.stdout),
                "{policy} t{threads}"
            );
            assert!(balance(&memory.stdout).is_some(), "{}", memory.stdout);
        }
    }

    // The streamed engine reports through the new event-queue metrics.
    let streamed = replay(&demands, &dir, "llf", 1, true);
    for name in [
        "wlan.engine.events_processed",
        "wlan.engine.events_queue_peak",
        "wlan.metrics.balance_samples",
        "trace.ingest.rows_ok",
    ] {
        assert!(
            streamed.metrics.contains(name),
            "missing {name} in {}",
            streamed.metrics
        );
    }
}
