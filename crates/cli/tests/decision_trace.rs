//! Process-level golden tests for the decision-trace harness: `trace`
//! logs must be byte-identical at any thread count (bodies — the header's
//! `threads` field is the one allowed difference), `check-trace` must
//! pass clean logs and fail corrupted ones with a nonzero exit and a
//! line-numbered report, and `replay --step` must drive a scripted
//! debugging session over stdin.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

fn s3wlan(args: &[&str]) -> std::process::Output {
    let output = Command::new(env!("CARGO_BIN_EXE_s3wlan"))
        .args(args)
        .output()
        .expect("launch s3wlan");
    assert!(
        output.status.success(),
        "s3wlan {args:?} failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    output
}

fn generate(dir: &Path) -> PathBuf {
    let demands = dir.join("demands.csv");
    s3wlan(&[
        "generate",
        "--out",
        &demands.display().to_string(),
        "--users",
        "120",
        "--buildings",
        "2",
        "--aps-per-building",
        "3",
        "--days",
        "5",
        "--seed",
        "17",
    ]);
    demands
}

fn trace(demands: &Path, dir: &Path, policy: &str, threads: usize) -> PathBuf {
    let log = dir.join(format!("decisions_{policy}_t{threads}.jsonl"));
    s3wlan(&[
        "trace",
        "--demands",
        &demands.display().to_string(),
        "--policy",
        policy,
        "--out",
        &log.display().to_string(),
        "--train-days",
        "3",
        "--aps-per-building",
        "3",
        "--rebalance",
        "--threads",
        &threads.to_string(),
    ]);
    log
}

/// Splits a log into (header line, body).
fn split(log: &Path) -> (String, String) {
    let text = std::fs::read_to_string(log).unwrap();
    let (header, body) = text.split_once('\n').expect("log has a header line");
    (header.to_string(), body.to_string())
}

#[test]
fn trace_round_trips_and_is_thread_independent() {
    let dir = std::env::temp_dir().join("s3_cli_decision_trace");
    std::fs::create_dir_all(&dir).unwrap();
    let demands = generate(&dir);

    for policy in ["llf", "s3"] {
        let t1 = trace(&demands, &dir, policy, 1);
        let t8 = trace(&demands, &dir, policy, 8);

        let (h1, b1) = split(&t1);
        let (h8, b8) = split(&t8);
        assert_eq!(
            b1, b8,
            "{policy}: log bodies must be byte-identical at t1 vs t8"
        );
        assert!(h1.contains("\"threads\":1"), "{h1}");
        assert!(h8.contains("\"threads\":8"), "{h8}");
        // The threads field is the one allowed header difference.
        assert_eq!(
            h1.replace("\"threads\":1", "\"threads\":8"),
            h8,
            "{policy}: headers may differ only in the threads field"
        );

        // The recorded log passes every invariant.
        let output = s3wlan(&["check-trace", "--trace", &t1.display().to_string()]);
        let stdout = String::from_utf8(output.stdout).unwrap();
        assert!(stdout.contains("all invariants hold"), "{stdout}");
    }
}

#[test]
fn check_trace_exits_nonzero_on_corruption() {
    let dir = std::env::temp_dir().join("s3_cli_decision_trace_bad");
    std::fs::create_dir_all(&dir).unwrap();
    let demands = generate(&dir);
    let log = trace(&demands, &dir, "llf", 1);

    // Point a selection at an AP outside its candidate set.
    let text = std::fs::read_to_string(&log).unwrap();
    let (idx, line) = text
        .lines()
        .enumerate()
        .find(|(_, l)| l.contains("\"k\":\"select\""))
        .expect("log has selections");
    let corrupted = text.replace(line, &line.replace("\"ap\":", "\"ap\":9999, \"was\":"));
    let bad = dir.join("corrupted.jsonl");
    std::fs::write(&bad, corrupted).unwrap();

    let output = Command::new(env!("CARGO_BIN_EXE_s3wlan"))
        .args(["check-trace", "--trace", &bad.display().to_string()])
        .output()
        .expect("launch s3wlan");
    assert!(
        !output.status.success(),
        "check-trace must fail on a corrupted log"
    );
    let stdout = String::from_utf8(output.stdout).unwrap();
    let stderr = String::from_utf8(output.stderr).unwrap();
    assert!(
        stdout.contains(&format!("line {}", idx + 1)),
        "report must carry the corrupted line number: {stdout}"
    );
    assert!(stdout.contains("candidate"), "{stdout}");
    assert!(stderr.contains("violation"), "{stderr}");
}

#[test]
fn step_debugger_runs_scripted_over_stdin() {
    let dir = std::env::temp_dir().join("s3_cli_decision_trace_step");
    std::fs::create_dir_all(&dir).unwrap();
    let demands = generate(&dir);
    let log = trace(&demands, &dir, "llf", 1);

    let mut child = Command::new(env!("CARGO_BIN_EXE_s3wlan"))
        .args(["replay", "--step", "--trace", &log.display().to_string()])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("launch s3wlan");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"step 5\nepoch\naps\ninfo\nquit\n")
        .unwrap();
    let output = child.wait_with_output().expect("collect output");
    assert!(
        output.status.success(),
        "step session failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8(output.stdout).unwrap();
    assert!(stdout.contains("(s3dbg)"), "{stdout}");
    assert!(stdout.contains("line 2: "), "{stdout}");
    assert!(stdout.contains("rebalance tick"), "{stdout}");
    assert!(stdout.contains("capacity-bps"), "{stdout}");
    assert!(stdout.contains("placed "), "{stdout}");
}
