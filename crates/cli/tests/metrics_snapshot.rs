//! Process-level test: `s3wlan replay --metrics-out` writes a stable,
//! schema-versioned snapshot that is byte-identical at `--threads 1` and
//! `--threads 8`, and `s3wlan summary` renders it. One process per run —
//! the metrics registry is process-wide.

use std::path::Path;
use std::process::Command;

fn s3wlan(args: &[&str]) -> std::process::Output {
    let output = Command::new(env!("CARGO_BIN_EXE_s3wlan"))
        .args(args)
        .output()
        .expect("launch s3wlan");
    assert!(
        output.status.success(),
        "s3wlan {args:?} failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    output
}

fn replay_metrics(demands: &Path, dir: &Path, threads: usize) -> String {
    let sessions = dir.join(format!("sessions_t{threads}.csv"));
    let metrics = dir.join(format!("metrics_t{threads}.json"));
    s3wlan(&[
        "replay",
        "--demands",
        &demands.display().to_string(),
        "--policy",
        "s3",
        "--out",
        &sessions.display().to_string(),
        "--train-days",
        "3",
        "--aps-per-building",
        "3",
        "--threads",
        &threads.to_string(),
        "--metrics-out",
        &metrics.display().to_string(),
    ]);
    std::fs::read_to_string(&metrics).unwrap()
}

#[test]
fn replay_snapshot_is_byte_identical_across_thread_counts() {
    let dir = std::env::temp_dir().join("s3_cli_metrics_snapshot");
    std::fs::create_dir_all(&dir).unwrap();
    let demands = dir.join("demands.csv");
    s3wlan(&[
        "generate",
        "--out",
        &demands.display().to_string(),
        "--users",
        "120",
        "--buildings",
        "2",
        "--aps-per-building",
        "3",
        "--days",
        "5",
        "--seed",
        "11",
    ]);

    let snap_1 = replay_metrics(&demands, &dir, 1);
    let snap_8 = replay_metrics(&demands, &dir, 8);
    assert!(snap_1.contains(s3_obs::SCHEMA_VERSION), "{snap_1}");
    assert_eq!(
        snap_1, snap_8,
        "stable snapshot must not depend on the thread count"
    );
    // The S³ path exercised training: mining, clustering and the selector
    // all report through the same registry.
    for name in [
        "trace.events.encounters_found",
        "stats.kmeans.fits",
        "core.batch.cliques_assigned",
        "wlan.engine.placements",
    ] {
        assert!(snap_1.contains(name), "missing {name} in {snap_1}");
    }

    // `summary` renders the snapshot as a table.
    let metrics = dir.join("metrics_t1.json");
    let output = s3wlan(&["summary", "--metrics", &metrics.display().to_string()]);
    let table = String::from_utf8(output.stdout).unwrap();
    assert!(table.contains("wlan.engine.placements"), "{table}");
}
