//! Process-level test for the fault-injection + lenient-ingestion loop:
//! a seeded faulty corpus replays end-to-end under `--lenient`, the
//! session output is byte-identical at `--threads 1` and `--threads 8`,
//! and strict mode rejects the same corpus with a line-numbered error.

use std::path::Path;
use std::process::Command;

const FAULT_SPEC: &str = "corrupt=5,invert=3,id-overflow=2,dup=4,overlap=3,skew=1:900,truncate";

fn s3wlan(args: &[&str]) -> std::process::Output {
    let output = Command::new(env!("CARGO_BIN_EXE_s3wlan"))
        .args(args)
        .output()
        .expect("launch s3wlan");
    assert!(
        output.status.success(),
        "s3wlan {args:?} failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    output
}

fn lenient_replay(demands: &Path, dir: &Path, threads: usize) -> (String, String) {
    // Same output path for every thread count so stdout (which echoes the
    // path) is comparable verbatim; contents are read back immediately.
    let sessions = dir.join("sessions.csv");
    let output = s3wlan(&[
        "replay",
        "--demands",
        &demands.display().to_string(),
        "--policy",
        "s3",
        "--out",
        &sessions.display().to_string(),
        "--train-days",
        "3",
        "--aps-per-building",
        "3",
        "--threads",
        &threads.to_string(),
        "--lenient",
    ]);
    (
        String::from_utf8(output.stdout).unwrap(),
        std::fs::read_to_string(&sessions).unwrap(),
    )
}

#[test]
fn faulty_corpus_replays_leniently_and_deterministically() {
    let dir = std::env::temp_dir().join("s3_cli_lenient_replay");
    std::fs::create_dir_all(&dir).unwrap();
    let demands = dir.join("faulty_demands.csv");
    let output = s3wlan(&[
        "generate",
        "--out",
        &demands.display().to_string(),
        "--users",
        "120",
        "--buildings",
        "2",
        "--aps-per-building",
        "3",
        "--days",
        "5",
        "--seed",
        "11",
        "--faults",
        FAULT_SPEC,
    ]);
    let stdout = String::from_utf8(output.stdout).unwrap();
    assert!(stdout.contains("injected"), "{stdout}");

    // Strict mode rejects the corpus, citing a line number.
    let strict = Command::new(env!("CARGO_BIN_EXE_s3wlan"))
        .args([
            "replay",
            "--demands",
            &demands.display().to_string(),
            "--policy",
            "llf",
            "--out",
            &dir.join("strict_sessions.csv").display().to_string(),
        ])
        .output()
        .expect("launch s3wlan");
    assert!(!strict.status.success(), "strict replay must fail");
    let stderr = String::from_utf8_lossy(&strict.stderr);
    assert!(stderr.contains("line"), "{stderr}");

    // Lenient replay completes, reports skips, and is thread-deterministic.
    let (out_1, sessions_1) = lenient_replay(&demands, &dir, 1);
    let (out_8, sessions_8) = lenient_replay(&demands, &dir, 8);
    assert!(out_1.contains("ingest:"), "{out_1}");
    assert!(out_1.contains("skipped"), "{out_1}");
    assert!(out_1.contains("replayed"), "{out_1}");
    assert_eq!(
        out_1, out_8,
        "report + replay output must not depend on threads"
    );
    assert_eq!(
        sessions_1, sessions_8,
        "session CSV must be byte-identical at t1 vs t8"
    );
}
