//! Process-level determinism matrix for the registry's contender
//! strategies (`flow-lb`, `mab`, `workload`) and the scenario grammar:
//!
//! * session CSVs byte-identical at `--threads 1` vs `--threads 8`;
//! * session CSVs byte-identical at `--shards 1` vs `--shards 4` (every
//!   contender declares `shardable`);
//! * the `mab` decision-trace log body byte-identical at `--shards 1` vs
//!   `--shards 4`;
//! * `generate --scenario` deterministic (same seed → byte-identical CSV)
//!   and actually editing the trace (different from the benign run).

use std::path::{Path, PathBuf};
use std::process::Command;

fn s3wlan(args: &[&str]) -> std::process::Output {
    let output = Command::new(env!("CARGO_BIN_EXE_s3wlan"))
        .args(args)
        .output()
        .expect("launch s3wlan");
    assert!(
        output.status.success(),
        "s3wlan {args:?} failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    output
}

fn generate(dir: &Path, name: &str, scenario: Option<&str>) -> PathBuf {
    let demands = dir.join(name);
    let out = demands.display().to_string();
    let mut args = vec![
        "generate",
        "--out",
        &out,
        "--users",
        "100",
        "--buildings",
        "2",
        "--aps-per-building",
        "3",
        "--days",
        "4",
        "--seed",
        "23",
    ];
    if let Some(spec) = scenario {
        args.push("--scenario");
        args.push(spec);
    }
    s3wlan(&args);
    demands
}

fn replay(demands: &Path, dir: &Path, policy: &str, threads: usize, shards: usize) -> Vec<u8> {
    let sessions = dir.join(format!("sessions_{policy}_t{threads}_s{shards}.csv"));
    s3wlan(&[
        "replay",
        "--demands",
        &demands.display().to_string(),
        "--policy",
        policy,
        "--out",
        &sessions.display().to_string(),
        "--aps-per-building",
        "3",
        "--threads",
        &threads.to_string(),
        "--shards",
        &shards.to_string(),
        "--seed",
        "23",
    ]);
    std::fs::read(&sessions).unwrap()
}

/// The log body: every line after the header record, which is where the
/// shard count (provenance) lives.
fn trace_body(demands: &Path, dir: &Path, policy: &str, shards: usize) -> String {
    let log = dir.join(format!("trace_{policy}_s{shards}.jsonl"));
    s3wlan(&[
        "trace",
        "--demands",
        &demands.display().to_string(),
        "--policy",
        policy,
        "--out",
        &log.display().to_string(),
        "--aps-per-building",
        "3",
        "--shards",
        &shards.to_string(),
        "--seed",
        "23",
    ]);
    let text = std::fs::read_to_string(&log).unwrap();
    let (first, body) = text.split_once('\n').expect("header line plus body");
    assert!(first.contains("s3-dtrace/1"), "{first}");
    body.to_string()
}

#[test]
fn contender_sessions_are_thread_and_shard_invariant() {
    let dir = std::env::temp_dir().join("s3_cli_strategy_matrix");
    std::fs::create_dir_all(&dir).unwrap();
    let demands = generate(&dir, "demands.csv", None);

    for policy in ["flow-lb", "mab", "workload"] {
        let base = replay(&demands, &dir, policy, 1, 1);
        assert_eq!(
            base,
            replay(&demands, &dir, policy, 8, 1),
            "{policy}: t1 vs t8 session CSVs must be byte-identical"
        );
        assert_eq!(
            base,
            replay(&demands, &dir, policy, 1, 4),
            "{policy}: s1 vs s4 session CSVs must be byte-identical"
        );
    }
}

#[test]
fn mab_trace_body_is_shard_invariant() {
    let dir = std::env::temp_dir().join("s3_cli_strategy_matrix_trace");
    std::fs::create_dir_all(&dir).unwrap();
    let demands = generate(&dir, "demands.csv", None);

    let body = trace_body(&demands, &dir, "mab", 1);
    assert!(!body.is_empty());
    assert_eq!(
        body,
        trace_body(&demands, &dir, "mab", 4),
        "mab: s1 vs s4 trace bodies must be byte-identical"
    );
}

#[test]
fn scenario_generation_is_deterministic_and_effective() {
    let dir = std::env::temp_dir().join("s3_cli_strategy_matrix_scenario");
    std::fs::create_dir_all(&dir).unwrap();

    let spec = "flash-crowd,outage=1:2:2,roam=40";
    let benign = std::fs::read(generate(&dir, "benign.csv", None)).unwrap();
    let a = std::fs::read(generate(&dir, "scenario_a.csv", Some(spec))).unwrap();
    let b = std::fs::read(generate(&dir, "scenario_b.csv", Some(spec))).unwrap();
    assert_eq!(a, b, "same seed + scenario must be byte-identical");
    assert_ne!(a, benign, "the scenario must actually edit the trace");

    // A scenario trace replays cleanly under a contender strategy.
    let demands = dir.join("scenario_a.csv");
    let sessions = replay(&demands, &dir, "workload", 1, 1);
    assert!(!sessions.is_empty());
}
