//! Command-line parsing — hand-rolled, zero dependencies.
//!
//! Policy names are not hard-coded here: `--policy` values are validated
//! against the [`s3_core::strategy_registry`] at parse time, and the
//! "deterministic under sharding" rule is the registry's
//! [`s3_wlan::StrategyCaps::shardable`] flag — adding a strategy never
//! touches this file.

use std::path::PathBuf;

use crate::CliError;

/// A parsed subcommand.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Print usage.
    Help,
    /// Generate a demand trace.
    Generate {
        /// Output CSV path.
        out: PathBuf,
        /// Generator seed.
        seed: u64,
        /// Users in the campus.
        users: usize,
        /// Buildings (one controller each).
        buildings: usize,
        /// APs per building.
        aps_per_building: usize,
        /// Simulated days.
        days: u64,
        /// Adversarial-scenario spec (see `ScenarioSpec::parse`), applied
        /// to the demand stream before it is written.
        scenario: Option<String>,
        /// Fault-injection spec (see `FaultSpec::parse`), applied to the
        /// CSV text after generation with the same seed.
        faults: Option<String>,
        /// Worker threads (0 = auto); the trace is identical for any
        /// value (per-entity seed streams).
        threads: usize,
    },
    /// Replay a demand trace under a policy.
    Replay {
        /// Input demand CSV.
        demands: PathBuf,
        /// Policy to evaluate (a registered strategy name).
        policy: String,
        /// Output session CSV.
        out: PathBuf,
        /// Seed (random policy, S³ clustering).
        seed: u64,
        /// Days of the trace used to train S³ (ignored by other policies).
        train_days: u64,
        /// Enable the online rebalancer.
        rebalance: bool,
        /// APs per building of the replayed topology.
        aps_per_building: usize,
        /// Worker threads (0 = auto); results are identical for any value.
        threads: usize,
        /// Controller-domain shards (1 = the unified engine); session CSVs
        /// are byte-identical for any value.
        shards: usize,
        /// Optional metrics-snapshot destination (`.json` or `.csv`).
        metrics_out: Option<PathBuf>,
        /// Include volatile (timing) metrics in the snapshot.
        metrics_full: bool,
        /// Skip malformed rows (with a report) instead of aborting.
        lenient: bool,
        /// Stream demands straight off disk (constant memory; requires a
        /// `(arrive, user)`-sorted file and no `--rebalance`).
        stream: bool,
    },
    /// Measurement study over a session log.
    Analyze {
        /// Input session CSV.
        sessions: PathBuf,
        /// Clustering seed.
        seed: u64,
        /// Worker threads (0 = auto); results are identical for any value.
        threads: usize,
        /// Optional metrics-snapshot destination (`.json` or `.csv`).
        metrics_out: Option<PathBuf>,
        /// Include volatile (timing) metrics in the snapshot.
        metrics_full: bool,
        /// Skip malformed rows (with a report) instead of aborting.
        lenient: bool,
    },
    /// Convert a foreign session CSV (string ids, epoch timestamps) into
    /// the canonical format, writing id-mapping files alongside.
    Convert {
        /// Input foreign CSV.
        input: PathBuf,
        /// Output canonical session CSV.
        out: PathBuf,
        /// Directory for `user_map.csv` / `ap_map.csv` /
        /// `controller_map.csv`.
        maps_dir: PathBuf,
        /// Skip malformed rows (with a report) instead of aborting.
        lenient: bool,
    },
    /// End-to-end S³-vs-LLF comparison.
    Compare {
        /// Input demand CSV.
        demands: PathBuf,
        /// Seed.
        seed: u64,
        /// Training days.
        train_days: u64,
        /// APs per building of the replayed topology.
        aps_per_building: usize,
        /// Worker threads (0 = auto); results are identical for any value.
        threads: usize,
        /// Optional metrics-snapshot destination (`.json` or `.csv`).
        metrics_out: Option<PathBuf>,
        /// Include volatile (timing) metrics in the snapshot.
        metrics_full: bool,
    },
    /// Render a metrics snapshot (written by `--metrics-out`) as a table.
    Summary {
        /// Input metrics JSON snapshot.
        metrics: PathBuf,
    },
    /// Replay a demand trace under a policy while recording every engine
    /// decision to an `s3-dtrace/1` JSONL log.
    Trace {
        /// Input demand CSV.
        demands: PathBuf,
        /// Policy to trace (a registered strategy name).
        policy: String,
        /// Output decision-log path (JSONL).
        out: PathBuf,
        /// Seed (random policy, S³ clustering).
        seed: u64,
        /// Days of the trace used to train S³ (ignored by other policies).
        train_days: u64,
        /// Enable the online rebalancer (adds tick/move records).
        rebalance: bool,
        /// APs per building of the replayed topology.
        aps_per_building: usize,
        /// Worker threads (0 = auto); the log body is identical for any
        /// value.
        threads: usize,
        /// Controller-domain shards (1 = the unified engine); the log body
        /// is identical for any value.
        shards: usize,
        /// Skip malformed rows (with a report) instead of aborting.
        lenient: bool,
    },
    /// Validate a decision log against the engine invariants.
    CheckTrace {
        /// Input decision log (JSONL).
        trace: PathBuf,
    },
    /// Interactive step debugger over a decision log
    /// (`replay --step --trace <log>`).
    Step {
        /// Input decision log (JSONL).
        trace: PathBuf,
    },
}

struct Cursor<'a> {
    args: &'a [String],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn next(&mut self) -> Option<&'a str> {
        let v = self.args.get(self.pos).map(String::as_str);
        self.pos += 1;
        v
    }

    fn value_for(&mut self, flag: &str) -> Result<&'a str, CliError> {
        self.next()
            .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))
    }
}

fn parse_u64(flag: &str, value: &str) -> Result<u64, CliError> {
    value
        .parse()
        .map_err(|_| CliError::Usage(format!("{flag} must be an unsigned integer, got {value:?}")))
}

fn parse_shards(value: &str) -> Result<usize, CliError> {
    let shards = parse_u64("--shards", value)? as usize;
    if shards == 0 {
        return Err(CliError::Usage(
            "--shards must be at least 1 (1 = the unified engine)".into(),
        ));
    }
    Ok(shards)
}

/// Validates a `--policy` value against the strategy registry, so unknown
/// names fail at parse time with the full list of known strategies.
fn parse_policy(name: &str) -> Result<String, CliError> {
    let registry = s3_core::strategy_registry();
    if registry.get(name).is_some() {
        Ok(name.to_string())
    } else {
        Err(CliError::Usage(registry.unknown(name).to_string()))
    }
}

/// Policies whose registry entry is not flagged deterministic-under-
/// sharding (the random baseline's sequential RNG stream) are refused up
/// front for `--shards > 1`; the rule lives in the registry's capability
/// flags, not in a hard-coded name list.
fn reject_unshardable(policy: &str, shards: usize) -> Result<(), CliError> {
    if shards > 1 {
        let entry = s3_core::strategy_registry()
            .get(policy)
            .expect("policy validated at parse");
        if !entry.caps().shardable {
            return Err(CliError::Usage(
                s3_wlan::StrategyError::NotShardable(entry.name()).to_string(),
            ));
        }
    }
    Ok(())
}

/// A `generate --scale` preset: `(users, buildings, aps_per_building,
/// days)`. Explicit flags override individual fields of the preset.
fn scale_preset(name: &str) -> Result<(usize, usize, usize, u64), CliError> {
    match name {
        // The paper-sized default campus.
        "campus" => Ok((2_000, 8, 8, 31)),
        // A district of campuses: stresses multi-controller sharding.
        "district" => Ok((50_000, 64, 16, 7)),
        // City scale: 10⁶ users over 10⁴ APs, one day — the engine-bench
        // workload.
        "city" => Ok((1_000_000, 1_250, 8, 1)),
        other => Err(CliError::Usage(format!(
            "unknown --scale {other:?} (expected campus, district or city)"
        ))),
    }
}

/// Parses `argv[1..]` (i.e. without the program name).
///
/// # Errors
///
/// [`CliError::Usage`] on unknown subcommands/flags or missing values.
pub fn parse(argv: &[String]) -> Result<Command, CliError> {
    let mut cursor = Cursor { args: argv, pos: 0 };
    let Some(sub) = cursor.next() else {
        return Ok(Command::Help);
    };
    match sub {
        "-h" | "--help" | "help" => Ok(Command::Help),
        "generate" => {
            let mut out = None;
            let mut seed = 42u64;
            let mut scale = None;
            // Explicit flags override the preset field-by-field, wherever
            // they appear relative to --scale.
            let mut users = None;
            let mut buildings = None;
            let mut aps = None;
            let mut days = None;
            let mut scenario = None;
            let mut faults = None;
            let mut threads = 0usize;
            while let Some(flag) = cursor.next() {
                match flag {
                    "--out" => out = Some(PathBuf::from(cursor.value_for(flag)?)),
                    "--seed" => seed = parse_u64(flag, cursor.value_for(flag)?)?,
                    "--scale" => scale = Some(scale_preset(cursor.value_for(flag)?)?),
                    "--users" => users = Some(parse_u64(flag, cursor.value_for(flag)?)? as usize),
                    "--buildings" => {
                        buildings = Some(parse_u64(flag, cursor.value_for(flag)?)? as usize)
                    }
                    "--aps-per-building" => {
                        aps = Some(parse_u64(flag, cursor.value_for(flag)?)? as usize)
                    }
                    "--days" => days = Some(parse_u64(flag, cursor.value_for(flag)?)?),
                    "--scenario" => scenario = Some(cursor.value_for(flag)?.to_string()),
                    "--faults" => faults = Some(cursor.value_for(flag)?.to_string()),
                    "--threads" => threads = parse_u64(flag, cursor.value_for(flag)?)? as usize,
                    other => return Err(CliError::Usage(format!("unknown flag {other:?}"))),
                }
            }
            let out = out.ok_or_else(|| CliError::Usage("generate requires --out".into()))?;
            let base = scale.unwrap_or_else(|| scale_preset("campus").expect("known preset"));
            let users = users.unwrap_or(base.0);
            let buildings = buildings.unwrap_or(base.1);
            let aps = aps.unwrap_or(base.2);
            let days = days.unwrap_or(base.3);
            if users == 0 || buildings == 0 || aps == 0 || days == 0 {
                return Err(CliError::Usage("counts must be positive".into()));
            }
            Ok(Command::Generate {
                out,
                seed,
                users,
                buildings,
                aps_per_building: aps,
                days,
                scenario,
                faults,
                threads,
            })
        }
        "replay" => {
            let mut demands = None;
            let mut policy = None;
            let mut out = None;
            let mut seed = 42u64;
            let mut train_days = 0u64;
            let mut rebalance = false;
            let mut aps_per_building = 8usize;
            let mut threads = 0usize;
            let mut shards = 1usize;
            let mut metrics_out = None;
            let mut metrics_full = false;
            let mut lenient = false;
            let mut stream = false;
            let mut step = false;
            let mut trace = None;
            while let Some(flag) = cursor.next() {
                match flag {
                    "--demands" => demands = Some(PathBuf::from(cursor.value_for(flag)?)),
                    "--stream" => stream = true,
                    "--step" => step = true,
                    "--trace" => trace = Some(PathBuf::from(cursor.value_for(flag)?)),
                    "--aps-per-building" => {
                        aps_per_building = parse_u64(flag, cursor.value_for(flag)?)? as usize
                    }
                    "--threads" => threads = parse_u64(flag, cursor.value_for(flag)?)? as usize,
                    "--shards" => shards = parse_shards(cursor.value_for(flag)?)?,
                    "--metrics-out" => metrics_out = Some(PathBuf::from(cursor.value_for(flag)?)),
                    "--metrics-full" => metrics_full = true,
                    "--lenient" => lenient = true,
                    "--policy" => policy = Some(parse_policy(cursor.value_for(flag)?)?),
                    "--out" => out = Some(PathBuf::from(cursor.value_for(flag)?)),
                    "--seed" => seed = parse_u64(flag, cursor.value_for(flag)?)?,
                    "--train-days" => train_days = parse_u64(flag, cursor.value_for(flag)?)?,
                    "--rebalance" => rebalance = true,
                    other => return Err(CliError::Usage(format!("unknown flag {other:?}"))),
                }
            }
            if step {
                let trace = trace.ok_or_else(|| {
                    CliError::Usage("replay --step requires --trace <decision log>".into())
                })?;
                return Ok(Command::Step { trace });
            }
            if trace.is_some() {
                return Err(CliError::Usage(
                    "--trace only applies to replay --step (record logs with \
                     the trace subcommand)"
                        .into(),
                ));
            }
            let demands =
                demands.ok_or_else(|| CliError::Usage("replay requires --demands".into()))?;
            let policy =
                policy.ok_or_else(|| CliError::Usage("replay requires --policy".into()))?;
            let out = out.ok_or_else(|| CliError::Usage("replay requires --out".into()))?;
            if aps_per_building == 0 {
                return Err(CliError::Usage(
                    "--aps-per-building must be positive".into(),
                ));
            }
            if stream && rebalance {
                return Err(CliError::Usage(
                    "--stream does not support --rebalance (migration segments \
                     need the full session log in memory)"
                        .into(),
                ));
            }
            reject_unshardable(&policy, shards)?;
            Ok(Command::Replay {
                demands,
                policy,
                out,
                seed,
                train_days,
                rebalance,
                aps_per_building,
                threads,
                shards,
                metrics_out,
                metrics_full,
                lenient,
                stream,
            })
        }
        "convert" => {
            let mut input = None;
            let mut out = None;
            let mut maps_dir = PathBuf::from(".");
            let mut lenient = false;
            while let Some(flag) = cursor.next() {
                match flag {
                    "--in" => input = Some(PathBuf::from(cursor.value_for(flag)?)),
                    "--out" => out = Some(PathBuf::from(cursor.value_for(flag)?)),
                    "--maps-dir" => maps_dir = PathBuf::from(cursor.value_for(flag)?),
                    "--lenient" => lenient = true,
                    other => return Err(CliError::Usage(format!("unknown flag {other:?}"))),
                }
            }
            let input = input.ok_or_else(|| CliError::Usage("convert requires --in".into()))?;
            let out = out.ok_or_else(|| CliError::Usage("convert requires --out".into()))?;
            Ok(Command::Convert {
                input,
                out,
                maps_dir,
                lenient,
            })
        }
        "analyze" => {
            let mut sessions = None;
            let mut seed = 42u64;
            let mut threads = 0usize;
            let mut metrics_out = None;
            let mut metrics_full = false;
            let mut lenient = false;
            while let Some(flag) = cursor.next() {
                match flag {
                    "--sessions" => sessions = Some(PathBuf::from(cursor.value_for(flag)?)),
                    "--seed" => seed = parse_u64(flag, cursor.value_for(flag)?)?,
                    "--threads" => threads = parse_u64(flag, cursor.value_for(flag)?)? as usize,
                    "--metrics-out" => metrics_out = Some(PathBuf::from(cursor.value_for(flag)?)),
                    "--metrics-full" => metrics_full = true,
                    "--lenient" => lenient = true,
                    other => return Err(CliError::Usage(format!("unknown flag {other:?}"))),
                }
            }
            let sessions =
                sessions.ok_or_else(|| CliError::Usage("analyze requires --sessions".into()))?;
            Ok(Command::Analyze {
                sessions,
                seed,
                threads,
                metrics_out,
                metrics_full,
                lenient,
            })
        }
        "compare" => {
            let mut demands = None;
            let mut seed = 42u64;
            let mut train_days = 0u64;
            let mut aps_per_building = 8usize;
            let mut threads = 0usize;
            let mut metrics_out = None;
            let mut metrics_full = false;
            while let Some(flag) = cursor.next() {
                match flag {
                    "--demands" => demands = Some(PathBuf::from(cursor.value_for(flag)?)),
                    "--seed" => seed = parse_u64(flag, cursor.value_for(flag)?)?,
                    "--train-days" => train_days = parse_u64(flag, cursor.value_for(flag)?)?,
                    "--aps-per-building" => {
                        aps_per_building = parse_u64(flag, cursor.value_for(flag)?)? as usize
                    }
                    "--threads" => threads = parse_u64(flag, cursor.value_for(flag)?)? as usize,
                    "--metrics-out" => metrics_out = Some(PathBuf::from(cursor.value_for(flag)?)),
                    "--metrics-full" => metrics_full = true,
                    other => return Err(CliError::Usage(format!("unknown flag {other:?}"))),
                }
            }
            let demands =
                demands.ok_or_else(|| CliError::Usage("compare requires --demands".into()))?;
            if aps_per_building == 0 {
                return Err(CliError::Usage(
                    "--aps-per-building must be positive".into(),
                ));
            }
            Ok(Command::Compare {
                demands,
                seed,
                train_days,
                aps_per_building,
                threads,
                metrics_out,
                metrics_full,
            })
        }
        "trace" => {
            let mut demands = None;
            let mut policy = None;
            let mut out = None;
            let mut seed = 42u64;
            let mut train_days = 0u64;
            let mut rebalance = false;
            let mut aps_per_building = 8usize;
            let mut threads = 0usize;
            let mut shards = 1usize;
            let mut lenient = false;
            while let Some(flag) = cursor.next() {
                match flag {
                    "--demands" => demands = Some(PathBuf::from(cursor.value_for(flag)?)),
                    "--out" => out = Some(PathBuf::from(cursor.value_for(flag)?)),
                    "--seed" => seed = parse_u64(flag, cursor.value_for(flag)?)?,
                    "--train-days" => train_days = parse_u64(flag, cursor.value_for(flag)?)?,
                    "--rebalance" => rebalance = true,
                    "--aps-per-building" => {
                        aps_per_building = parse_u64(flag, cursor.value_for(flag)?)? as usize
                    }
                    "--threads" => threads = parse_u64(flag, cursor.value_for(flag)?)? as usize,
                    "--shards" => shards = parse_shards(cursor.value_for(flag)?)?,
                    "--lenient" => lenient = true,
                    "--policy" => policy = Some(parse_policy(cursor.value_for(flag)?)?),
                    other => return Err(CliError::Usage(format!("unknown flag {other:?}"))),
                }
            }
            let demands =
                demands.ok_or_else(|| CliError::Usage("trace requires --demands".into()))?;
            let policy = policy.ok_or_else(|| CliError::Usage("trace requires --policy".into()))?;
            let out = out.ok_or_else(|| CliError::Usage("trace requires --out".into()))?;
            if aps_per_building == 0 {
                return Err(CliError::Usage(
                    "--aps-per-building must be positive".into(),
                ));
            }
            reject_unshardable(&policy, shards)?;
            Ok(Command::Trace {
                demands,
                policy,
                out,
                seed,
                train_days,
                rebalance,
                aps_per_building,
                threads,
                shards,
                lenient,
            })
        }
        "check-trace" => {
            let mut trace = None;
            while let Some(flag) = cursor.next() {
                match flag {
                    "--trace" => trace = Some(PathBuf::from(cursor.value_for(flag)?)),
                    other => return Err(CliError::Usage(format!("unknown flag {other:?}"))),
                }
            }
            let trace =
                trace.ok_or_else(|| CliError::Usage("check-trace requires --trace".into()))?;
            Ok(Command::CheckTrace { trace })
        }
        "summary" => {
            let mut metrics = None;
            while let Some(flag) = cursor.next() {
                match flag {
                    "--metrics" => metrics = Some(PathBuf::from(cursor.value_for(flag)?)),
                    other => return Err(CliError::Usage(format!("unknown flag {other:?}"))),
                }
            }
            let metrics =
                metrics.ok_or_else(|| CliError::Usage("summary requires --metrics".into()))?;
            Ok(Command::Summary { metrics })
        }
        other => Err(CliError::Usage(format!("unknown subcommand {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn empty_and_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&argv("--help")).unwrap(), Command::Help);
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
    }

    #[test]
    fn generate_defaults_and_overrides() {
        let cmd = parse(&argv("generate --out x.csv")).unwrap();
        match cmd {
            Command::Generate {
                users,
                buildings,
                days,
                seed,
                ..
            } => {
                assert_eq!(users, 2_000);
                assert_eq!(buildings, 8);
                assert_eq!(days, 31);
                assert_eq!(seed, 42);
            }
            other => panic!("wrong command: {other:?}"),
        }
        let cmd = parse(&argv("generate --out x.csv --users 100 --days 5 --seed 9")).unwrap();
        match cmd {
            Command::Generate {
                users, days, seed, ..
            } => {
                assert_eq!(users, 100);
                assert_eq!(days, 5);
                assert_eq!(seed, 9);
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn generate_threads_flag_parses() {
        match parse(&argv("generate --out x.csv --threads 8")).unwrap() {
            Command::Generate { threads, .. } => assert_eq!(threads, 8),
            other => panic!("wrong command: {other:?}"),
        }
        match parse(&argv("generate --out x.csv")).unwrap() {
            Command::Generate { threads, .. } => assert_eq!(threads, 0, "0 = auto"),
            other => panic!("wrong command: {other:?}"),
        }
        assert!(parse(&argv("generate --out x.csv --threads")).is_err());
    }

    #[test]
    fn generate_requires_out_and_positive_counts() {
        assert!(parse(&argv("generate")).is_err());
        assert!(parse(&argv("generate --out x.csv --users 0")).is_err());
    }

    #[test]
    fn replay_full_form() {
        let cmd = parse(&argv(
            "replay --demands d.csv --policy s3 --out s.csv --train-days 7 --rebalance",
        ))
        .unwrap();
        match cmd {
            Command::Replay {
                policy,
                train_days,
                rebalance,
                ..
            } => {
                assert_eq!(policy, "s3");
                assert_eq!(train_days, 7);
                assert!(rebalance);
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn replay_rejects_unknown_policy() {
        let err = parse(&argv("replay --demands d.csv --policy magic --out s.csv")).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("unknown policy"), "{msg}");
        // The error enumerates every registered strategy.
        for name in s3_core::strategy_registry().names() {
            assert!(msg.contains(name), "{msg} should list {name}");
        }
    }

    #[test]
    fn missing_values_error() {
        assert!(parse(&argv("generate --out")).is_err());
        assert!(parse(&argv("replay --demands d.csv --policy")).is_err());
        assert!(parse(&argv("generate --seed notanumber --out x.csv")).is_err());
    }

    #[test]
    fn unknown_subcommand_and_flags() {
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("analyze --sessions s.csv --what")).is_err());
    }

    #[test]
    fn metrics_flags_parse() {
        let cmd = parse(&argv(
            "replay --demands d.csv --policy llf --out s.csv --metrics-out m.json --metrics-full",
        ))
        .unwrap();
        match cmd {
            Command::Replay {
                metrics_out,
                metrics_full,
                ..
            } => {
                assert_eq!(metrics_out, Some(PathBuf::from("m.json")));
                assert!(metrics_full);
            }
            other => panic!("wrong command: {other:?}"),
        }
        let cmd = parse(&argv("analyze --sessions s.csv --metrics-out m.csv")).unwrap();
        match cmd {
            Command::Analyze {
                metrics_out,
                metrics_full,
                ..
            } => {
                assert_eq!(metrics_out, Some(PathBuf::from("m.csv")));
                assert!(!metrics_full);
            }
            other => panic!("wrong command: {other:?}"),
        }
        assert!(parse(&argv("compare --demands d.csv --metrics-out")).is_err());
    }

    #[test]
    fn faults_and_lenient_flags_parse() {
        let cmd = parse(&argv("generate --out x.csv --faults corrupt=3,truncate")).unwrap();
        match cmd {
            Command::Generate { faults, .. } => {
                assert_eq!(faults.as_deref(), Some("corrupt=3,truncate"));
            }
            other => panic!("wrong command: {other:?}"),
        }
        assert!(parse(&argv("generate --out x.csv --faults")).is_err());

        for (cmdline, want) in [
            (
                "replay --demands d.csv --policy llf --out s.csv --lenient",
                true,
            ),
            ("replay --demands d.csv --policy llf --out s.csv", false),
        ] {
            match parse(&argv(cmdline)).unwrap() {
                Command::Replay { lenient, .. } => assert_eq!(lenient, want),
                other => panic!("wrong command: {other:?}"),
            }
        }
        match parse(&argv("analyze --sessions s.csv --lenient")).unwrap() {
            Command::Analyze { lenient, .. } => assert!(lenient),
            other => panic!("wrong command: {other:?}"),
        }
        match parse(&argv("convert --in f.csv --out s.csv --lenient")).unwrap() {
            Command::Convert { lenient, .. } => assert!(lenient),
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn stream_flag_parses_and_rejects_rebalance() {
        match parse(&argv(
            "replay --demands d.csv --policy llf --out s.csv --stream",
        ))
        .unwrap()
        {
            Command::Replay { stream, .. } => assert!(stream),
            other => panic!("wrong command: {other:?}"),
        }
        match parse(&argv("replay --demands d.csv --policy llf --out s.csv")).unwrap() {
            Command::Replay { stream, .. } => assert!(!stream),
            other => panic!("wrong command: {other:?}"),
        }
        let err = parse(&argv(
            "replay --demands d.csv --policy llf --out s.csv --stream --rebalance",
        ))
        .unwrap_err();
        assert!(err.to_string().contains("--stream does not support"));
    }

    #[test]
    fn shards_flag_parses_and_guards() {
        for (cmdline, want) in [
            ("replay --demands d.csv --policy llf --out s.csv", 1usize),
            (
                "replay --demands d.csv --policy llf --out s.csv --shards 4",
                4,
            ),
        ] {
            match parse(&argv(cmdline)).unwrap() {
                Command::Replay { shards, .. } => assert_eq!(shards, want),
                other => panic!("wrong command: {other:?}"),
            }
        }
        match parse(&argv(
            "trace --demands d.csv --policy s3 --out t.jsonl --shards 8",
        ))
        .unwrap()
        {
            Command::Trace { shards, .. } => assert_eq!(shards, 8),
            other => panic!("wrong command: {other:?}"),
        }
        let err = parse(&argv(
            "replay --demands d.csv --policy llf --out s.csv --shards 0",
        ))
        .unwrap_err();
        assert!(err.to_string().contains("at least 1"), "{err}");
        // The random policy draws from one sequential RNG stream; its
        // registry entry is not flagged shardable, so a sharded run is
        // refused up front.
        for cmdline in [
            "replay --demands d.csv --policy random --out s.csv --shards 2",
            "trace --demands d.csv --policy random --out t.jsonl --shards 2",
        ] {
            let err = parse(&argv(cmdline)).unwrap_err();
            assert!(err.to_string().contains("random"), "{err}");
        }
        // One shard is the unified engine: random stays allowed.
        assert!(parse(&argv(
            "replay --demands d.csv --policy random --out s.csv --shards 1"
        ))
        .is_ok());
        // Every other registered strategy is shardable — including the
        // RNG-bearing MAB, whose stream is keyed by shard-stable ids.
        for name in s3_core::strategy_registry().names() {
            if name == "random" {
                continue;
            }
            let cmdline = format!("replay --demands d.csv --policy {name} --out s.csv --shards 4");
            assert!(parse(&argv(&cmdline)).is_ok(), "{name} must shard");
        }
    }

    #[test]
    fn generate_scale_presets_and_overrides() {
        match parse(&argv("generate --out x.csv --scale city")).unwrap() {
            Command::Generate {
                users,
                buildings,
                aps_per_building,
                days,
                ..
            } => {
                assert_eq!(users, 1_000_000);
                assert_eq!(buildings * aps_per_building, 10_000, "city = 10^4 APs");
                assert_eq!(days, 1);
            }
            other => panic!("wrong command: {other:?}"),
        }
        // Explicit flags override preset fields regardless of order.
        match parse(&argv("generate --out x.csv --users 5 --scale district")).unwrap() {
            Command::Generate {
                users, buildings, ..
            } => {
                assert_eq!(users, 5);
                assert_eq!(buildings, 64);
            }
            other => panic!("wrong command: {other:?}"),
        }
        let err = parse(&argv("generate --out x.csv --scale galaxy")).unwrap_err();
        assert!(err.to_string().contains("unknown --scale"), "{err}");
    }

    #[test]
    fn summary_requires_metrics() {
        let cmd = parse(&argv("summary --metrics m.json")).unwrap();
        assert_eq!(
            cmd,
            Command::Summary {
                metrics: PathBuf::from("m.json")
            }
        );
        assert!(parse(&argv("summary")).is_err());
        assert!(parse(&argv("summary --what m.json")).is_err());
    }

    #[test]
    fn trace_parses_like_replay() {
        let cmd = parse(&argv(
            "trace --demands d.csv --policy s3 --out d.trace --train-days 4 \
             --rebalance --aps-per-building 3 --threads 2 --seed 9",
        ))
        .unwrap();
        match cmd {
            Command::Trace {
                policy,
                train_days,
                rebalance,
                aps_per_building,
                threads,
                seed,
                ..
            } => {
                assert_eq!(policy, "s3");
                assert_eq!(train_days, 4);
                assert!(rebalance);
                assert_eq!(aps_per_building, 3);
                assert_eq!(threads, 2);
                assert_eq!(seed, 9);
            }
            other => panic!("wrong command: {other:?}"),
        }
        assert!(parse(&argv("trace --demands d.csv --policy llf")).is_err());
        assert!(parse(&argv("trace --demands d.csv --out t.jsonl")).is_err());
        assert!(parse(&argv("trace --demands d.csv --policy llf --out t --stream")).is_err());
    }

    #[test]
    fn check_trace_requires_trace() {
        assert_eq!(
            parse(&argv("check-trace --trace d.trace")).unwrap(),
            Command::CheckTrace {
                trace: PathBuf::from("d.trace")
            }
        );
        assert!(parse(&argv("check-trace")).is_err());
        assert!(parse(&argv("check-trace --what d.trace")).is_err());
    }

    #[test]
    fn replay_step_takes_a_trace() {
        assert_eq!(
            parse(&argv("replay --step --trace d.trace")).unwrap(),
            Command::Step {
                trace: PathBuf::from("d.trace")
            }
        );
        let err = parse(&argv("replay --step")).unwrap_err();
        assert!(err.to_string().contains("--step requires --trace"), "{err}");
        let err = parse(&argv(
            "replay --demands d.csv --policy llf --out s.csv --trace d.trace",
        ))
        .unwrap_err();
        assert!(err.to_string().contains("--trace only applies"), "{err}");
    }

    #[test]
    fn every_registered_policy_parses() {
        for name in s3_core::strategy_registry().names() {
            let cmdline = format!("replay --demands d.csv --policy {name} --out s.csv");
            match parse(&argv(&cmdline)).unwrap() {
                Command::Replay { policy, .. } => assert_eq!(policy, name),
                other => panic!("wrong command: {other:?}"),
            }
        }
        assert!(parse_policy("nope").is_err());
    }

    #[test]
    fn generate_scenario_flag_parses() {
        match parse(&argv(
            "generate --out x.csv --scenario flash-crowd,caps=tiered",
        ))
        .unwrap()
        {
            Command::Generate { scenario, .. } => {
                assert_eq!(scenario.as_deref(), Some("flash-crowd,caps=tiered"));
            }
            other => panic!("wrong command: {other:?}"),
        }
        match parse(&argv("generate --out x.csv")).unwrap() {
            Command::Generate { scenario, .. } => assert_eq!(scenario, None),
            other => panic!("wrong command: {other:?}"),
        }
        assert!(parse(&argv("generate --out x.csv --scenario")).is_err());
    }
}
