//! Execution of the parsed subcommands.

use std::any::Any;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use s3_core::{strategy_registry, S3Config, S3Selector, SocialModel};
use s3_stats::gap::{gap_statistic, GapConfig};
use s3_trace::decision_log::{config_hash, DecisionLogReader, DecisionRecord};
use s3_trace::generator::{
    apply_scenario, inject_csv_faults, CampusConfig, CampusGenerator, FaultSpec, ScenarioSpec,
};
use s3_trace::ingest::{
    read_demands_lenient, read_sessions_lenient, DemandReader, IngestMode, IngestReport, RowFault,
};
use s3_trace::{csv, SessionDemand, SessionRecord, TraceStore};
use s3_types::{TimeDelta, Timestamp, UserId};
use s3_wlan::engine::{check_log, trace_header, SliceSource, TraceSink};
use s3_wlan::metrics::{mean_active_balance_filtered, StreamingBalance};
use s3_wlan::selector::{ApSelector, LeastLoadedFirst};
use s3_wlan::{
    EngineError, RebalanceConfig, RecordSink, SimConfig, SimEngine, StreamSource, Topology,
};

use crate::args::Command;
use crate::{CliError, USAGE};

/// The metric bin and hour filter every CLI report uses.
const REPORT_BIN_MINUTES: u64 = 10;

fn daytime(hour: u64) -> bool {
    hour >= 8
}

/// Runs one parsed command, writing human-readable output to `out`.
///
/// # Errors
///
/// Any [`CliError`] raised by I/O, CSV decoding or invalid inputs.
pub fn execute<W: Write>(command: Command, out: &mut W) -> Result<(), CliError> {
    match command {
        Command::Help => {
            writeln!(out, "{USAGE}")?;
            Ok(())
        }
        Command::Generate {
            out: path,
            seed,
            users,
            buildings,
            aps_per_building,
            days,
            scenario,
            faults,
            threads,
        } => generate(
            &path,
            seed,
            users,
            buildings,
            aps_per_building,
            days,
            scenario.as_deref(),
            faults.as_deref(),
            threads,
            out,
        ),
        Command::Replay {
            demands,
            policy,
            out: path,
            seed,
            train_days,
            rebalance,
            aps_per_building,
            threads,
            shards,
            metrics_out,
            metrics_full,
            lenient,
            stream,
        } => {
            if stream {
                replay_streamed(
                    &demands,
                    &policy,
                    &path,
                    seed,
                    train_days,
                    aps_per_building,
                    threads,
                    shards,
                    lenient,
                    out,
                )?;
            } else {
                replay(
                    &demands,
                    &policy,
                    &path,
                    seed,
                    train_days,
                    rebalance,
                    aps_per_building,
                    threads,
                    shards,
                    lenient,
                    out,
                )?;
            }
            write_metrics(metrics_out.as_deref(), metrics_full, out)
        }
        Command::Convert {
            input,
            out: path,
            maps_dir,
            lenient,
        } => convert(&input, &path, &maps_dir, lenient, out),
        Command::Analyze {
            sessions,
            seed,
            threads,
            metrics_out,
            metrics_full,
            lenient,
        } => {
            analyze(&sessions, seed, threads, lenient, out)?;
            write_metrics(metrics_out.as_deref(), metrics_full, out)
        }
        Command::Compare {
            demands,
            seed,
            train_days,
            aps_per_building,
            threads,
            metrics_out,
            metrics_full,
        } => {
            compare(&demands, seed, train_days, aps_per_building, threads, out)?;
            write_metrics(metrics_out.as_deref(), metrics_full, out)
        }
        Command::Summary { metrics } => summary(&metrics, out),
        Command::Trace {
            demands,
            policy,
            out: path,
            seed,
            train_days,
            rebalance,
            aps_per_building,
            threads,
            shards,
            lenient,
        } => trace(
            &demands,
            &policy,
            &path,
            seed,
            train_days,
            rebalance,
            aps_per_building,
            threads,
            shards,
            lenient,
            out,
        ),
        Command::CheckTrace { trace } => check_trace(&trace, out),
        Command::Step { trace } => step_debug(&trace, std::io::stdin().lock(), out),
    }
}

/// Dumps the global metrics registry to `path` (when given), stable metrics
/// only unless `full`. Runs after the command body so the snapshot covers
/// the whole run.
fn write_metrics<W: Write>(path: Option<&Path>, full: bool, out: &mut W) -> Result<(), CliError> {
    let Some(path) = path else { return Ok(()) };
    let snapshot = s3_obs::global().snapshot();
    let snapshot = if full {
        snapshot
    } else {
        snapshot.stable_only()
    };
    snapshot.write_to_file(path)?;
    writeln!(
        out,
        "wrote {} metrics ({}) to {}",
        snapshot.metrics.len(),
        if full { "stable + volatile" } else { "stable" },
        path.display()
    )?;
    Ok(())
}

/// Renders a metrics JSON snapshot as a human-readable table.
fn summary<W: Write>(path: &Path, out: &mut W) -> Result<(), CliError> {
    let text = std::fs::read_to_string(path)?;
    let snapshot = s3_obs::Snapshot::parse_json(&text)?;
    write!(out, "{}", snapshot.render_table())?;
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn generate<W: Write>(
    path: &Path,
    seed: u64,
    users: usize,
    buildings: usize,
    aps_per_building: usize,
    days: u64,
    scenario: Option<&str>,
    faults: Option<&str>,
    threads: usize,
    out: &mut W,
) -> Result<(), CliError> {
    let spec = faults
        .map(FaultSpec::parse)
        .transpose()
        .map_err(|e| CliError::Usage(format!("--faults: {e}")))?;
    let scenario = scenario
        .map(|s| ScenarioSpec::parse(s, days))
        .transpose()
        .map_err(|e| CliError::Usage(format!("--scenario: {e}")))?;
    let config = CampusConfig {
        users,
        buildings,
        aps_per_building,
        days,
        ..CampusConfig::campus()
    };
    // The parallel generator is byte-identical at any thread count
    // (per-entity seed streams), so the CLI always routes through it.
    let effective_threads = s3_par::resolve_threads(Some(threads).filter(|&t| t > 0));
    let mut campus = CampusGenerator::new(config, seed).generate_par(effective_threads);
    if let Some(scenario) = scenario.filter(|s| !s.is_empty()) {
        let log = apply_scenario(&mut campus.demands, &campus.config, &scenario, seed);
        writeln!(out, "{}", log.summary())?;
    }
    match spec {
        Some(spec) if !spec.is_empty() => {
            let mut buf = Vec::new();
            csv::write_demands(&mut buf, &campus.demands)?;
            let text = String::from_utf8(buf).expect("CSV output is UTF-8");
            let (faulty, log) = inject_csv_faults(&text, &spec, seed);
            std::fs::write(path, faulty)?;
            writeln!(out, "{}", log.summary())?;
        }
        _ => {
            let file = File::create(path)?;
            csv::write_demands(BufWriter::new(file), &campus.demands)?;
        }
    }
    writeln!(
        out,
        "wrote {} demands ({} users, {} buildings x {} APs, {} days, seed {seed}) to {}",
        campus.demands.len(),
        users,
        buildings,
        aps_per_building,
        days,
        path.display()
    )?;
    Ok(())
}

fn load_demands(path: &Path) -> Result<Vec<SessionDemand>, CliError> {
    load_demands_report(path, false, &mut std::io::sink())
}

/// Reads a demand CSV, strictly or leniently. In lenient mode malformed
/// rows are skipped and the per-class [`IngestReport`] is printed to `out`
/// (and published to the metrics registry by the reader).
fn load_demands_report<W: Write>(
    path: &Path,
    lenient: bool,
    out: &mut W,
) -> Result<Vec<SessionDemand>, CliError> {
    let file = File::open(path)?;
    let mut demands = if lenient {
        let (demands, report) = read_demands_lenient(BufReader::new(file))?;
        writeln!(out, "ingest: {}", report.summary())?;
        demands
    } else {
        csv::read_demands(BufReader::new(file))?
    };
    if demands.is_empty() {
        return Err(CliError::Invalid(format!(
            "{} contains no demands",
            path.display()
        )));
    }
    demands.sort_by_key(|d| (d.arrive, d.user));
    Ok(demands)
}

fn topology_for(demands: &[SessionDemand], aps_per_building: usize) -> Topology {
    let buildings = demands
        .iter()
        .map(|d| d.building.index() + 1)
        .max()
        .unwrap_or(1);
    let config = CampusConfig {
        buildings,
        aps_per_building,
        ..CampusConfig::campus()
    };
    Topology::from_campus(&config)
}

/// The paper-default S³ configuration with the CLI's thread request
/// (`0` = auto) applied.
fn s3_config(threads: usize) -> S3Config {
    S3Config {
        threads,
        ..S3Config::default()
    }
}

/// Trains S³ on the first `train_days` days of the demand stream, replayed
/// under LLF (the "collected log" convention of the paper).
fn train_s3(
    demands: &[SessionDemand],
    engine: &SimEngine,
    train_days: u64,
    seed: u64,
    threads: usize,
) -> SocialModel {
    let history: Vec<SessionDemand> = demands
        .iter()
        .filter(|d| d.arrive.day() < train_days)
        .cloned()
        .collect();
    let log = TraceStore::new(engine.run(&history, &mut LeastLoadedFirst::new()).records);
    SocialModel::learn(&log, &s3_config(threads), seed)
}

/// The S³ training span: `--train-days`, defaulting to the first 70 % of
/// the trace's days.
fn effective_train_days(train_days: u64, span_days: u64) -> u64 {
    if train_days == 0 {
        (span_days * 7) / 10
    } else {
        train_days
    }
}

/// Builds one equivalent selector per shard for a replay-style run by
/// looking `policy` up in the [`strategy_registry`] — the single
/// policy-name → selector code path shared by plain, sharded and traced
/// replays. Policies whose capability flags declare `needs_training` get
/// an S³ model trained on the first `effective_train_days` of `training`
/// and passed down as the build-context artifact; the registry clones it
/// into every shard's selector. Returns the selectors together with the
/// effective training-day count (`0` for untrained policies), which
/// parameterizes the decision-trace config hash.
#[allow(clippy::too_many_arguments)]
fn build_selectors<W: Write>(
    training: &[SessionDemand],
    engine: &SimEngine,
    policy: &str,
    seed: u64,
    train_days: u64,
    span_days: u64,
    threads: usize,
    shards: usize,
    out: &mut W,
) -> Result<(Vec<Box<dyn ApSelector + Send>>, u64), CliError> {
    let registry = strategy_registry();
    let entry = registry
        .get(policy)
        .ok_or_else(|| CliError::Usage(registry.unknown(policy).to_string()))?;
    let (model, trained) = if entry.caps().needs_training {
        let effective = effective_train_days(train_days, span_days);
        let model = train_s3(training, engine, effective, seed, threads);
        writeln!(
            out,
            "trained S3 on the first {effective} days: {} known pairs, {} types",
            model.known_pairs(),
            model.type_count()
        )?;
        (Some(model), effective)
    } else {
        (None, 0)
    };
    let artifact = model.as_ref().map(|m| m as &(dyn Any + Send + Sync));
    let selectors = registry
        .build_shards(policy, shards, seed, threads, artifact)
        .map_err(|e| CliError::Usage(e.to_string()))?;
    Ok((selectors, trained))
}

#[allow(clippy::too_many_arguments)]
fn replay<W: Write>(
    demands_path: &Path,
    policy: &str,
    out_path: &Path,
    seed: u64,
    train_days: u64,
    rebalance: bool,
    aps_per_building: usize,
    threads: usize,
    shards: usize,
    lenient: bool,
    out: &mut W,
) -> Result<(), CliError> {
    let demands = load_demands_report(demands_path, lenient, out)?;
    let topology = topology_for(&demands, aps_per_building);
    let sim_config = SimConfig {
        rebalance: rebalance.then(RebalanceConfig::default),
        ..SimConfig::default()
    };
    let engine = SimEngine::new(topology, sim_config);
    let span = demands.last().map_or(0, |d| d.arrive.day() + 1);
    let (mut selectors, _) = build_selectors(
        &demands, &engine, policy, seed, train_days, span, threads, shards, out,
    )?;

    let result = if shards > 1 {
        let mut source = SliceSource::new(&demands);
        engine
            .run_sharded_source(&mut source, &mut selectors)
            .map_err(engine_err)?
    } else {
        engine.run_unsorted(&demands, selectors[0].as_mut())
    };
    let file = File::create(out_path)?;
    csv::write_sessions(BufWriter::new(file), &result.records)?;

    let log = TraceStore::new(result.records);
    let balance =
        mean_active_balance_filtered(&log, TimeDelta::minutes(REPORT_BIN_MINUTES), daytime);
    writeln!(
        out,
        "replayed {} demands under {} -> {} session records ({} migrations) to {}",
        demands.len(),
        policy,
        log.len(),
        result.migrations,
        out_path.display()
    )?;
    if let Some(b) = balance {
        writeln!(out, "mean daytime balance index: {b:.4}")?;
    }
    Ok(())
}

fn engine_err(e: EngineError) -> CliError {
    match e {
        EngineError::Source(e) => CliError::Csv(e),
        EngineError::Sink(e) => CliError::Io(e),
        other => CliError::Invalid(other.to_string()),
    }
}

/// [`RecordSink`] of the streaming replay: writes each record straight to
/// the session CSV and folds it into the balance accumulator, so no record
/// is ever held after emission.
struct StreamingReplaySink<W: Write> {
    writer: W,
    balance: StreamingBalance,
}

impl<W: Write> RecordSink for StreamingReplaySink<W> {
    fn emit(&mut self, record: SessionRecord) -> std::io::Result<()> {
        self.balance.observe(&record);
        csv::write_session_row(&mut self.writer, &record)
    }
}

/// `replay --stream`: replays the demand CSV straight off disk, writing
/// each session record as it is placed. Peak memory is bounded by the live
/// session table, the balance accumulator and (for S³) the training
/// prefix — never by the trace length.
///
/// Three passes over the file, publishing `trace.ingest.*` exactly once:
///
/// 1. a metrics-silenced scan for the trace extent (demand count, building
///    count, day span) that also enforces the `(arrive, user)` sort order
///    the in-memory path would impose by sorting — the contract that makes
///    both paths replay the identical demand sequence;
/// 2. for training policies only (per the registry's capability flags), a
///    metrics-silenced read of the first `--train-days` days (the training
///    prefix is the only trace slice ever materialized);
/// 3. the replay itself, which publishes the ingest metrics.
///
/// Output — the session CSV, the stable metrics snapshot and the balance
/// index — is byte-identical to the in-memory path on the same file.
#[allow(clippy::too_many_arguments)]
fn replay_streamed<W: Write>(
    demands_path: &Path,
    policy: &str,
    out_path: &Path,
    seed: u64,
    train_days: u64,
    aps_per_building: usize,
    threads: usize,
    shards: usize,
    lenient: bool,
    out: &mut W,
) -> Result<(), CliError> {
    let mode = if lenient {
        IngestMode::Lenient
    } else {
        IngestMode::Strict
    };
    let open = |path: &Path| -> Result<DemandReader<BufReader<File>>, CliError> {
        Ok(DemandReader::new(BufReader::new(File::open(path)?), mode)?)
    };

    // Pass 1: extent scan (metrics silenced) + sort-order contract.
    let mut scan = open(demands_path)?.without_publish();
    let mut count = 0usize;
    let mut buildings = 0usize;
    let mut last_day = 0u64;
    let mut last_key: Option<(Timestamp, UserId)> = None;
    for row in scan.by_ref() {
        let d = row?;
        let key = (d.arrive, d.user);
        if last_key.is_some_and(|prev| key < prev) {
            return Err(CliError::Invalid(format!(
                "{} is not sorted by (arrive, user); --stream replays the file \
                 as-is — re-sort it, or drop --stream to sort in memory",
                demands_path.display()
            )));
        }
        last_key = Some(key);
        count += 1;
        buildings = buildings.max(d.building.index() + 1);
        last_day = d.arrive.day();
    }
    if lenient {
        writeln!(out, "ingest: {}", scan.report().summary())?;
    }
    if count == 0 {
        return Err(CliError::Invalid(format!(
            "{} contains no demands",
            demands_path.display()
        )));
    }

    let config = CampusConfig {
        buildings,
        aps_per_building,
        ..CampusConfig::campus()
    };
    let engine = SimEngine::new(Topology::from_campus(&config), SimConfig::default());

    // One selector per shard; `--shards 1` (the default) is the unified
    // engine. Unshardable policies are single-shard only (enforced at
    // parse time via the registry's capability flags).
    let span = last_day + 1;
    let registry = strategy_registry();
    let needs_training = registry
        .get(policy)
        .ok_or_else(|| CliError::Usage(registry.unknown(policy).to_string()))?
        .caps()
        .needs_training;
    // Pass 2 (training policies only, metrics silenced): the training
    // prefix. The file is arrive-sorted, so the prefix read can stop early.
    let mut history: Vec<SessionDemand> = Vec::new();
    if needs_training {
        let effective = effective_train_days(train_days, span);
        for row in open(demands_path)?.without_publish() {
            let d = row?;
            if d.arrive.day() >= effective {
                break;
            }
            history.push(d);
        }
    }
    let (mut selectors, _) = build_selectors(
        &history, &engine, policy, seed, train_days, span, threads, shards, out,
    )?;

    // Pass 3: the replay — the one pass that publishes trace.ingest.*.
    let mut source = StreamSource::new(open(demands_path)?);
    let mut sink = StreamingReplaySink {
        writer: BufWriter::new(File::create(out_path)?),
        balance: StreamingBalance::new(TimeDelta::minutes(REPORT_BIN_MINUTES)),
    };
    csv::write_session_header(&mut sink.writer)?;
    let totals = engine
        .run_sharded_streamed(&mut source, &mut selectors, &mut sink)
        .map_err(engine_err)?;
    let StreamingReplaySink {
        mut writer,
        balance,
    } = sink;
    writer.flush()?;

    writeln!(
        out,
        "replayed {count} demands under {} -> {} session records ({} migrations) to {} (streamed)",
        policy,
        totals.records,
        totals.migrations,
        out_path.display()
    )?;
    if let Some(b) = balance.finish(daytime) {
        writeln!(out, "mean daytime balance index: {b:.4}")?;
    }
    Ok(())
}

/// Expected header of a foreign session CSV: same columns as the canonical
/// format, but `user`/`ap`/`controller` may be arbitrary strings (hashed
/// MACs, AP names) and timestamps arbitrary epoch seconds.
const FOREIGN_HEADER: &str = "user,ap,controller,connect,disconnect,im,p2p,music,email,video,web";

fn convert<W: Write>(
    input: &Path,
    out_path: &Path,
    maps_dir: &Path,
    lenient: bool,
    out: &mut W,
) -> Result<(), CliError> {
    use s3_trace::interner::IdInterner;
    use s3_types::{ApId, Bytes, ControllerId, Timestamp, UserId};
    use std::io::BufRead as _;

    let file = File::open(input)?;
    let reader = BufReader::new(file);
    let mut lines = reader.lines();
    let header = lines
        .next()
        .ok_or_else(|| CliError::Invalid("empty input (missing header)".into()))??;
    if header.trim() != FOREIGN_HEADER {
        return Err(CliError::Invalid(format!(
            "unexpected header {header:?} (expected {FOREIGN_HEADER:?}; fields must not contain commas)"
        )));
    }
    struct Raw {
        user: String,
        ap: String,
        controller: String,
        connect: u64,
        disconnect: u64,
        volumes: [u64; 6],
    }
    // Parses one data row, classifying failures so lenient mode can count
    // them per fault class while strict mode reports the same message.
    fn parse_raw(fields: &[&str]) -> Result<Raw, (RowFault, String)> {
        if fields.len() != 11 {
            return Err((
                RowFault::FieldCount,
                format!(
                    "expected 11 fields, got {} (commas inside fields are not supported)",
                    fields.len()
                ),
            ));
        }
        let parse = |s: &str, what: &str| -> Result<u64, (RowFault, String)> {
            s.trim()
                .parse::<u64>()
                .map_err(|e| (RowFault::BadInt, format!("bad {what} {s:?}: {e}")))
        };
        let connect = parse(fields[3], "connect")?;
        let disconnect = parse(fields[4], "disconnect")?;
        if disconnect < connect {
            return Err((RowFault::Inverted, "disconnect precedes connect".into()));
        }
        let mut volumes = [0u64; 6];
        for (slot, f) in volumes.iter_mut().zip(&fields[5..]) {
            *slot = parse(f, "volume")?;
        }
        Ok(Raw {
            user: fields[0].trim().to_string(),
            ap: fields[1].trim().to_string(),
            controller: fields[2].trim().to_string(),
            connect,
            disconnect,
            volumes,
        })
    }

    let mut report = IngestReport::new();
    let mut raw_rows: Vec<Raw> = Vec::new();
    for (i, line) in lines.enumerate() {
        let line_no = i + 2;
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        report.rows_read += 1;
        let fields: Vec<&str> = line.split(',').collect();
        match parse_raw(&fields) {
            Ok(raw) => {
                report.rows_ok += 1;
                raw_rows.push(raw);
            }
            Err((fault, _)) if lenient => report.note(fault),
            Err((_, detail)) => {
                return Err(CliError::Invalid(format!("line {line_no}: {detail}")));
            }
        }
    }
    if lenient {
        writeln!(out, "ingest: {}", report.summary())?;
        report.publish();
    }
    if raw_rows.is_empty() {
        return Err(CliError::Invalid("input contains no sessions".into()));
    }

    // Rebase time so day 0 is the first session's midnight (preserves the
    // day/hour structure the analyses depend on).
    let min_connect = raw_rows.iter().map(|r| r.connect).min().expect("non-empty");
    let base = min_connect / 86_400 * 86_400;

    let mut users = IdInterner::new();
    let mut aps = IdInterner::new();
    let mut controllers = IdInterner::new();
    let records: Vec<s3_trace::SessionRecord> = raw_rows
        .iter()
        .map(|r| s3_trace::SessionRecord {
            user: UserId::new(users.intern(&r.user)),
            ap: ApId::new(aps.intern(&r.ap)),
            controller: ControllerId::new(controllers.intern(&r.controller)),
            connect: Timestamp::from_secs(r.connect - base),
            disconnect: Timestamp::from_secs(r.disconnect - base),
            volume_by_app: {
                let mut v = [Bytes::ZERO; 6];
                for (slot, &b) in v.iter_mut().zip(&r.volumes) {
                    *slot = Bytes::new(b);
                }
                v
            },
        })
        .collect();

    let out_file = File::create(out_path)?;
    csv::write_sessions(BufWriter::new(out_file), &records)?;
    std::fs::create_dir_all(maps_dir)?;
    for (name, interner) in [
        ("user_map.csv", &users),
        ("ap_map.csv", &aps),
        ("controller_map.csv", &controllers),
    ] {
        let f = File::create(maps_dir.join(name))?;
        interner.write_csv(BufWriter::new(f))?;
    }
    writeln!(
        out,
        "converted {} sessions: {} users, {} APs, {} controllers; time rebased by {base}s",
        records.len(),
        users.len(),
        aps.len(),
        controllers.len()
    )?;
    writeln!(
        out,
        "wrote {} and id maps under {}",
        out_path.display(),
        maps_dir.display()
    )?;
    Ok(())
}

fn analyze<W: Write>(
    path: &Path,
    seed: u64,
    threads: usize,
    lenient: bool,
    out: &mut W,
) -> Result<(), CliError> {
    let file = File::open(path)?;
    let records = if lenient {
        let (records, report) = read_sessions_lenient(BufReader::new(file))?;
        writeln!(out, "ingest: {}", report.summary())?;
        records
    } else {
        csv::read_sessions(BufReader::new(file))?
    };
    if records.is_empty() {
        return Err(CliError::Invalid(format!(
            "{} contains no sessions",
            path.display()
        )));
    }
    let store = TraceStore::new(records);
    let (_, last_day) = store.day_range().expect("non-empty store");
    let summary = s3_trace::summary::TraceSummary::of(&store);
    write!(out, "trace: {}", summary.report())?;
    if let Some((realm, share)) = summary.dominant_realm() {
        writeln!(
            out,
            "dominant realm: {realm} ({:.1}% of traffic)",
            share * 100.0
        )?;
    }

    let bin = TimeDelta::minutes(REPORT_BIN_MINUTES);
    if let Some(balance) = mean_active_balance_filtered(&store, bin, daytime) {
        writeln!(out, "mean daytime balance index: {balance:.4}")?;
    }

    let effective_threads = s3_par::resolve_threads(Some(threads).filter(|&t| t > 0));

    // Sociality.
    let stats =
        s3_trace::events::leaving_stats_par(&store, TimeDelta::minutes(5), effective_threads);
    let mut fractions: Vec<f64> = stats
        .values()
        .filter(|s| s.total > 0)
        .map(|s| s.co_leaving_fraction())
        .collect();
    if !fractions.is_empty() {
        fractions.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = fractions[fractions.len() / 2];
        writeln!(
            out,
            "co-leaving (5-min window): median user co-leaves {:.0}% of departures",
            median * 100.0
        )?;
    }

    // Typing.
    let profiles = s3_core::profile::all_window_profiles(&store, last_day, 15.min(last_day + 1));
    if profiles.len() >= 16 {
        let mut users: Vec<_> = profiles.keys().copied().collect();
        users.sort_unstable();
        let points: Vec<Vec<f64>> = users
            .iter()
            .map(|u| profiles[u].shares().to_vec())
            .collect();
        let k_max = 8.min(points.len());
        let gap_config = GapConfig {
            threads: effective_threads,
            ..GapConfig::default()
        };
        if let Ok(gap) = gap_statistic(&points, k_max, &gap_config, seed) {
            writeln!(
                out,
                "application-profile clusters (gap statistic): k = {}",
                gap.chosen_k
            )?;
        }
        let model = SocialModel::learn(&store, &s3_config(threads), seed);
        let t = model.type_matrix();
        if t.k() > 1 {
            writeln!(
                out,
                "type co-leave matrix: diagonal mean {:.3} vs off-diagonal {:.3}",
                t.diagonal_mean(),
                t.off_diagonal_mean()
            )?;
        }
    } else {
        writeln!(out, "too few active users for profile clustering")?;
    }
    Ok(())
}

fn compare<W: Write>(
    path: &Path,
    seed: u64,
    train_days: u64,
    aps_per_building: usize,
    threads: usize,
    out: &mut W,
) -> Result<(), CliError> {
    let demands = load_demands(path)?;
    let span = demands.last().expect("non-empty").arrive.day() + 1;
    let train_days = if train_days == 0 {
        (span * 7) / 10
    } else {
        train_days
    };
    if train_days >= span {
        return Err(CliError::Invalid(format!(
            "train days {train_days} must leave evaluation days (trace spans {span} days)"
        )));
    }
    let topology = topology_for(&demands, aps_per_building);
    let engine = SimEngine::new(topology, SimConfig::default());
    let model = train_s3(&demands, &engine, train_days, seed, threads);
    writeln!(
        out,
        "trained on days 0..{train_days}: {} known pairs, {} types",
        model.known_pairs(),
        model.type_count()
    )?;

    let eval: Vec<SessionDemand> = demands
        .iter()
        .filter(|d| d.arrive.day() >= train_days)
        .cloned()
        .collect();
    let bin = TimeDelta::minutes(REPORT_BIN_MINUTES);
    let llf_log = TraceStore::new(engine.run(&eval, &mut LeastLoadedFirst::new()).records);
    let mut s3 = S3Selector::new(model, s3_config(threads));
    let s3_log = TraceStore::new(engine.run(&eval, &mut s3).records);
    let llf = mean_active_balance_filtered(&llf_log, bin, daytime)
        .ok_or_else(|| CliError::Invalid("no active evaluation bins".into()))?;
    let s3b = mean_active_balance_filtered(&s3_log, bin, daytime)
        .ok_or_else(|| CliError::Invalid("no active evaluation bins".into()))?;
    writeln!(
        out,
        "evaluation (days {train_days}..{span}): LLF {llf:.4} | S3 {s3b:.4} | gain {:+.1}%",
        (s3b - llf) / llf * 100.0
    )?;
    Ok(())
}

/// `trace`: replays a demand CSV exactly like `replay`, but records every
/// engine decision to an `s3-dtrace/1` JSONL log instead of a session CSV.
#[allow(clippy::too_many_arguments)]
fn trace<W: Write>(
    demands_path: &Path,
    policy: &str,
    out_path: &Path,
    seed: u64,
    train_days: u64,
    rebalance: bool,
    aps_per_building: usize,
    threads: usize,
    shards: usize,
    lenient: bool,
    out: &mut W,
) -> Result<(), CliError> {
    let demands = load_demands_report(demands_path, lenient, out)?;
    let topology = topology_for(&demands, aps_per_building);
    let sim_config = SimConfig {
        rebalance: rebalance.then(RebalanceConfig::default),
        ..SimConfig::default()
    };
    let engine = SimEngine::new(topology, sim_config);
    let span = demands.last().map_or(0, |d| d.arrive.day() + 1);
    let (mut selectors, trained_days) = build_selectors(
        &demands, &engine, policy, seed, train_days, span, threads, shards, out,
    )?;

    // The canonical run-configuration string behind the header's config
    // hash: everything that shapes decisions, and nothing that does not
    // (the thread and shard counts are provenance, recorded in their own
    // header fields — log bodies are byte-identical across both).
    let canonical = format!(
        "policy={policy};seed={seed};train-days={trained_days};rebalance={};\
         aps-per-building={aps_per_building};demands={}",
        u8::from(rebalance),
        demands.len(),
    );
    let header = trace_header(
        engine.topology(),
        seed,
        threads as u64,
        shards as u64,
        policy,
        config_hash(&canonical),
    );
    let mut sink = TraceSink::new(BufWriter::new(File::create(out_path)?), &header)?;
    let mut source = SliceSource::new(&demands);
    let totals = engine
        .run_sharded_traced(&mut source, &mut selectors, &mut sink)
        .map_err(engine_err)?;
    let records = sink.records_written();
    sink.finish()?.flush()?;

    writeln!(
        out,
        "traced {} demands under {} -> {} decision records \
         ({} placed, {} rejected, {} migrations) to {}",
        demands.len(),
        policy,
        records,
        totals.placed,
        totals.rejected,
        totals.migrations,
        out_path.display()
    )?;
    Ok(())
}

/// `check-trace`: replays a decision log against the engine invariants,
/// printing each violation with its line number and failing (nonzero exit)
/// when any is found.
fn check_trace<W: Write>(path: &Path, out: &mut W) -> Result<(), CliError> {
    let file = File::open(path)?;
    let report = check_log(BufReader::new(file))
        .map_err(|e| CliError::Invalid(format!("{}: {e}", path.display())))?;
    if report.is_clean() {
        writeln!(
            out,
            "checked {} records (strategy {}, seed {}, {} APs): all invariants hold",
            report.records,
            report.header.strategy,
            report.header.seed,
            report.header.ap_capacity_bps.len()
        )?;
        return Ok(());
    }
    for v in &report.violations {
        writeln!(out, "{v}")?;
    }
    Err(CliError::Invalid(format!(
        "{}: {} invariant violation(s) in {} records",
        path.display(),
        report.violations.len(),
        report.records
    )))
}

/// Mirror of the engine's load clamp ([`s3_types::BitsPerSec`]): negative
/// or non-finite loads floor at zero.
fn load_clamp(v: f64) -> f64 {
    if v.is_finite() && v > 0.0 {
        v
    } else {
        0.0
    }
}

/// Engine state reconstructed by the step debugger, folded record by
/// record from the decision log.
struct StepState {
    /// Per-AP load in bits/sec.
    loads: Vec<f64>,
    /// Per-AP associated-user count.
    users: Vec<usize>,
    /// Live sessions: sid -> (user, ap, rate).
    live: std::collections::HashMap<u32, (u32, u32, f64)>,
    placed: u64,
    rejected: u64,
    departed: u64,
    migrations: u64,
}

impl StepState {
    fn new(aps: usize) -> Self {
        StepState {
            loads: vec![0.0; aps],
            users: vec![0; aps],
            live: std::collections::HashMap::new(),
            placed: 0,
            rejected: 0,
            departed: 0,
            migrations: 0,
        }
    }

    /// Folds one record into the reconstructed state.
    fn apply(&mut self, rec: &DecisionRecord) {
        match *rec {
            DecisionRecord::Select {
                sid,
                user,
                ap,
                rate_bps,
                ..
            } => {
                if let Some(load) = self.loads.get_mut(ap as usize) {
                    *load += rate_bps;
                    self.users[ap as usize] += 1;
                }
                self.live.insert(sid, (user, ap, rate_bps));
                self.placed += 1;
            }
            DecisionRecord::Reject { .. } => self.rejected += 1,
            DecisionRecord::Depart { sid, .. } => {
                if let Some((_, ap, rate)) = self.live.remove(&sid) {
                    if let Some(load) = self.loads.get_mut(ap as usize) {
                        *load = load_clamp(*load - rate);
                        self.users[ap as usize] = self.users[ap as usize].saturating_sub(1);
                    }
                    self.departed += 1;
                }
            }
            DecisionRecord::Move { sid, to, .. } => {
                if let Some(entry) = self.live.get_mut(&sid) {
                    let (from, rate) = (entry.1 as usize, entry.2);
                    entry.1 = to;
                    if from < self.loads.len() {
                        self.loads[from] = load_clamp(self.loads[from] - rate);
                        self.users[from] = self.users[from].saturating_sub(1);
                    }
                    if let Some(load) = self.loads.get_mut(to as usize) {
                        *load += rate;
                        self.users[to as usize] += 1;
                    }
                    self.migrations += 1;
                }
            }
            _ => {}
        }
    }

    /// Whether `rec` mentions `user` (the breakpoint test).
    fn mentions(rec: &DecisionRecord, user: u32) -> bool {
        match rec {
            DecisionRecord::Batch { users, .. } => users.contains(&user),
            DecisionRecord::Select { user: u, .. }
            | DecisionRecord::Reject { user: u, .. }
            | DecisionRecord::Move { user: u, .. }
            | DecisionRecord::Depart { user: u, .. } => *u == user,
            _ => false,
        }
    }
}

/// One-line human rendering of a record for the debugger transcript.
fn render_record(rec: &DecisionRecord) -> String {
    match rec {
        DecisionRecord::Batch { at, seq, users } => {
            format!("t={at} batch seq={seq} users={users:?}")
        }
        DecisionRecord::Select {
            at,
            sid,
            user,
            ap,
            clique,
            degraded,
            rate_bps,
            candidates,
        } => {
            let clique = clique.map_or_else(|| "-".to_string(), |c| c.to_string());
            format!(
                "t={at} select sid={sid} user={user} -> ap {ap} (clique {clique}{}, \
                 rate {rate_bps} b/s, candidates {candidates:?})",
                if *degraded { ", degraded" } else { "" }
            )
        }
        DecisionRecord::Reject { at, user } => {
            format!("t={at} reject user={user} (no candidate AP)")
        }
        DecisionRecord::Tick { at, seq } => format!("t={at} rebalance tick seq={seq}"),
        DecisionRecord::Move {
            at,
            sid,
            user,
            from,
            to,
        } => format!("t={at} move sid={sid} user={user} ap {from} -> {to}"),
        DecisionRecord::Report { at, seq, loads_bps } => {
            format!("t={at} load report seq={seq} ({} APs)", loads_bps.len())
        }
        DecisionRecord::Depart {
            at,
            seq,
            sid,
            user,
            ap,
        } => format!("t={at} depart seq={seq} sid={sid} user={user} from ap {ap}"),
        DecisionRecord::End {
            placed,
            rejected,
            departed,
            active,
        } => {
            format!("end: placed={placed} rejected={rejected} departed={departed} active={active}")
        }
    }
}

const STEP_HELP: &str = "\
commands:
  step/s [N]      apply the next N records (default 1)
  epoch/e         run to the next rebalance tick
  break/b <user>  break when a record mentions the user
  run/c           run to the next breakpoint hit
  aps/p           print reconstructed per-AP load and user counts
  info/i          print run tallies and the live-session count
  quit/q          exit";

/// `replay --step`: interactive debugger over a recorded decision log.
///
/// Commands arrive one per line on `cmds` (stdin in the CLI, a buffer in
/// tests); a transcript is written to `out`. The debugger replays the log
/// only — it never re-runs the engine — so stepping is instant and the
/// printed AP state is exactly what the checker's replay reconstructs.
fn step_debug<W: Write, R: BufRead>(path: &Path, mut cmds: R, out: &mut W) -> Result<(), CliError> {
    let file = File::open(path)?;
    let mut log = DecisionLogReader::new(BufReader::new(file))
        .map_err(|e| CliError::Invalid(format!("{}: {e}", path.display())))?;
    let header = log.header().clone();
    let mut state = StepState::new(header.ap_capacity_bps.len());
    let mut breaks: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
    writeln!(
        out,
        "stepping {} — strategy {}, seed {}, {} APs (type `help` for commands)",
        path.display(),
        header.strategy,
        header.seed,
        header.ap_capacity_bps.len()
    )?;

    let mut advance = |state: &mut StepState| -> Result<Option<(u64, DecisionRecord)>, CliError> {
        match log.next() {
            None => Ok(None),
            Some(Err(e)) => Err(CliError::Invalid(format!("{}: {e}", path.display()))),
            Some(Ok((line, rec))) => {
                state.apply(&rec);
                Ok(Some((line, rec)))
            }
        }
    };

    loop {
        write!(out, "(s3dbg) ")?;
        out.flush()?;
        let mut cmd = String::new();
        if cmds.read_line(&mut cmd)? == 0 {
            writeln!(out)?;
            break;
        }
        let mut parts = cmd.split_whitespace();
        let Some(verb) = parts.next() else { continue };
        match verb {
            "q" | "quit" => break,
            "h" | "help" => writeln!(out, "{STEP_HELP}")?,
            "b" | "break" => match parts.next().and_then(|s| s.parse::<u32>().ok()) {
                Some(u) => {
                    breaks.insert(u);
                    writeln!(out, "breakpoint on user {u}")?;
                }
                None => writeln!(out, "usage: break <user-id>")?,
            },
            "s" | "step" => {
                let n: u64 = parts.next().and_then(|s| s.parse().ok()).unwrap_or(1);
                for _ in 0..n {
                    match advance(&mut state)? {
                        Some((line, rec)) => {
                            writeln!(out, "line {line}: {}", render_record(&rec))?;
                        }
                        None => {
                            writeln!(out, "end of log")?;
                            break;
                        }
                    }
                }
            }
            "e" | "epoch" => {
                let mut stepped = 0u64;
                loop {
                    match advance(&mut state)? {
                        Some((line, rec)) => {
                            stepped += 1;
                            if matches!(rec, DecisionRecord::Tick { .. }) {
                                writeln!(
                                    out,
                                    "line {line}: {} ({stepped} records in)",
                                    render_record(&rec)
                                )?;
                                break;
                            }
                        }
                        None => {
                            writeln!(out, "end of log ({stepped} records, no tick)")?;
                            break;
                        }
                    }
                }
            }
            "c" | "run" => {
                if breaks.is_empty() {
                    writeln!(out, "no breakpoints (set one with break <user>)")?;
                    continue;
                }
                let mut stepped = 0u64;
                loop {
                    match advance(&mut state)? {
                        Some((line, rec)) => {
                            stepped += 1;
                            if breaks.iter().any(|&u| StepState::mentions(&rec, u)) {
                                writeln!(
                                    out,
                                    "line {line}: {} (after {stepped} records)",
                                    render_record(&rec)
                                )?;
                                break;
                            }
                        }
                        None => {
                            writeln!(out, "end of log ({stepped} records, no breakpoint hit)")?;
                            break;
                        }
                    }
                }
            }
            "p" | "aps" => {
                writeln!(out, "ap   load-bps     users  capacity-bps")?;
                for (i, (&load, &users)) in state.loads.iter().zip(&state.users).enumerate() {
                    writeln!(
                        out,
                        "{i:<4} {load:<12} {users:<6} {}",
                        header.ap_capacity_bps[i]
                    )?;
                }
            }
            "i" | "info" => writeln!(
                out,
                "placed {} | rejected {} | departed {} | migrations {} | active {}",
                state.placed,
                state.rejected,
                state.departed,
                state.migrations,
                state.live.len()
            )?,
            other => writeln!(out, "unknown command {other:?} (try help)")?,
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    fn run_str(cmdline: &str) -> Result<String, CliError> {
        let mut buf = Vec::new();
        execute(parse(&argv(cmdline))?, &mut buf)?;
        Ok(String::from_utf8(buf).expect("utf8 output"))
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("s3_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn help_prints_usage() {
        let output = run_str("help").unwrap();
        assert!(output.contains("USAGE"));
        assert!(output.contains("s3wlan generate"));
    }

    #[test]
    fn generate_replay_analyze_compare_workflow() {
        let demands = tmp("wf_demands.csv");
        let sessions = tmp("wf_sessions.csv");
        let output = run_str(&format!(
            "generate --out {} --users 120 --buildings 2 --aps-per-building 3 --days 6 --seed 5",
            demands.display()
        ))
        .unwrap();
        assert!(output.contains("wrote"), "{output}");

        let output = run_str(&format!(
            "replay --demands {} --policy llf --out {} --aps-per-building 3",
            demands.display(),
            sessions.display()
        ))
        .unwrap();
        assert!(output.contains("replayed"), "{output}");
        assert!(output.contains("balance index"), "{output}");

        let output = run_str(&format!("analyze --sessions {}", sessions.display())).unwrap();
        assert!(output.contains("trace:"), "{output}");
        assert!(output.contains("co-leaving"), "{output}");

        let output = run_str(&format!(
            "compare --demands {} --train-days 4 --aps-per-building 3",
            demands.display()
        ))
        .unwrap();
        assert!(output.contains("gain"), "{output}");
    }

    #[test]
    fn replay_s3_trains_first() {
        let demands = tmp("s3_demands.csv");
        let sessions = tmp("s3_sessions.csv");
        run_str(&format!(
            "generate --out {} --users 80 --buildings 2 --aps-per-building 3 --days 5 --seed 2",
            demands.display()
        ))
        .unwrap();
        let output = run_str(&format!(
            "replay --demands {} --policy s3 --out {} --train-days 3 --aps-per-building 3",
            demands.display(),
            sessions.display()
        ))
        .unwrap();
        assert!(
            output.contains("trained S3 on the first 3 days"),
            "{output}"
        );
    }

    #[test]
    fn replay_with_rebalance_reports_migrations() {
        let demands = tmp("rb_demands.csv");
        let sessions = tmp("rb_sessions.csv");
        run_str(&format!(
            "generate --out {} --users 100 --buildings 1 --aps-per-building 4 --days 3 --seed 8",
            demands.display()
        ))
        .unwrap();
        let output = run_str(&format!(
            "replay --demands {} --policy rssi --out {} --rebalance --aps-per-building 4",
            demands.display(),
            sessions.display()
        ))
        .unwrap();
        assert!(output.contains("migrations"), "{output}");
    }

    #[test]
    fn faulty_corpus_round_trip_lenient_vs_strict() {
        let demands = tmp("flt_demands.csv");
        let sessions = tmp("flt_sessions.csv");
        let output = run_str(&format!(
            "generate --out {} --users 60 --buildings 2 --aps-per-building 3 --days 4 --seed 11 \
             --faults corrupt=4,invert=2,id-overflow=1,dup=3,skew=1:600,truncate",
            demands.display()
        ))
        .unwrap();
        assert!(output.contains("injected"), "{output}");

        // Strict replay aborts with a line-numbered CSV error.
        let err = run_str(&format!(
            "replay --demands {} --policy llf --out {}",
            demands.display(),
            sessions.display()
        ))
        .unwrap_err();
        assert!(matches!(err, CliError::Csv(_)), "{err}");
        assert!(err.to_string().contains("line"), "{err}");

        // Lenient replay completes end-to-end and reports the skips.
        let output = run_str(&format!(
            "replay --demands {} --policy llf --out {} --lenient",
            demands.display(),
            sessions.display()
        ))
        .unwrap();
        assert!(output.contains("ingest:"), "{output}");
        assert!(output.contains("skipped"), "{output}");
        assert!(output.contains("replayed"), "{output}");

        // Lenient analyze runs on the (clean) replay output.
        let output = run_str(&format!(
            "analyze --sessions {} --lenient",
            sessions.display()
        ))
        .unwrap();
        assert!(output.contains("ingest:"), "{output}");
        assert!(
            output.contains("0 skipped") || output.contains("all rows ok"),
            "{output}"
        );
    }

    #[test]
    fn stream_replay_is_byte_identical_to_in_memory() {
        let demands = tmp("st_demands.csv");
        let mem_out = tmp("st_mem.csv");
        let stream_out = tmp("st_stream.csv");
        run_str(&format!(
            "generate --out {} --users 100 --buildings 2 --aps-per-building 3 --days 5 --seed 13",
            demands.display()
        ))
        .unwrap();

        for policy in ["llf", "s3"] {
            let mem = run_str(&format!(
                "replay --demands {} --policy {policy} --out {} --aps-per-building 3",
                demands.display(),
                mem_out.display()
            ))
            .unwrap();
            let streamed = run_str(&format!(
                "replay --demands {} --policy {policy} --out {} --aps-per-building 3 --stream",
                demands.display(),
                stream_out.display()
            ))
            .unwrap();
            assert_eq!(
                std::fs::read(&mem_out).unwrap(),
                std::fs::read(&stream_out).unwrap(),
                "{policy}: session CSVs must match byte-for-byte"
            );
            assert!(streamed.contains("(streamed)"), "{streamed}");
            // The streamed balance accumulator reproduces the in-memory
            // balance line exactly.
            let balance = |s: &str| {
                s.lines()
                    .find(|l| l.contains("balance index"))
                    .map(str::to_string)
            };
            assert_eq!(balance(&mem), balance(&streamed), "{policy}");
            assert!(balance(&mem).is_some(), "{mem}");
        }
    }

    #[test]
    fn stream_replay_rejects_unsorted_input() {
        let demands = tmp("st_unsorted.csv");
        std::fs::write(
            &demands,
            "user,building,controller,arrive,depart,im,p2p,music,email,video,web\n\
             1,0,0,500,900,0,0,0,0,0,10\n\
             2,0,0,100,400,0,0,0,0,0,10\n",
        )
        .unwrap();
        let err = run_str(&format!(
            "replay --demands {} --policy llf --out /tmp/x.csv --stream",
            demands.display()
        ))
        .unwrap_err();
        assert!(matches!(err, CliError::Invalid(_)), "{err}");
        assert!(
            err.to_string().contains("sorted by (arrive, user)"),
            "{err}"
        );
        // The same file replays fine in memory (it is sorted there).
        let out = tmp("st_unsorted_out.csv");
        let output = run_str(&format!(
            "replay --demands {} --policy llf --out {}",
            demands.display(),
            out.display()
        ))
        .unwrap();
        assert!(output.contains("replayed 2 demands"), "{output}");
    }

    #[test]
    fn stream_replay_lenient_skips_and_reports() {
        let demands = tmp("st_faulty.csv");
        let sessions = tmp("st_faulty_out.csv");
        run_str(&format!(
            "generate --out {} --users 40 --buildings 1 --aps-per-building 3 --days 3 --seed 7 \
             --faults corrupt=3,invert=2",
            demands.display()
        ))
        .unwrap();
        let err = run_str(&format!(
            "replay --demands {} --policy llf --out {} --stream",
            demands.display(),
            sessions.display()
        ))
        .unwrap_err();
        assert!(matches!(err, CliError::Csv(_)), "{err}");
        let output = run_str(&format!(
            "replay --demands {} --policy llf --out {} --stream --lenient",
            demands.display(),
            sessions.display()
        ))
        .unwrap();
        assert!(output.contains("ingest:"), "{output}");
        assert!(output.contains("skipped"), "{output}");
        assert!(output.contains("(streamed)"), "{output}");
    }

    #[test]
    fn generate_rejects_bad_fault_spec() {
        let err = run_str("generate --out /tmp/x.csv --faults corrupt=wat").unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
        assert!(err.to_string().contains("--faults"), "{err}");
    }

    #[test]
    fn convert_ingests_foreign_traces() {
        let foreign = tmp("foreign.csv");
        let sessions = tmp("converted.csv");
        let maps = tmp("maps");
        std::fs::write(
            &foreign,
            "user,ap,controller,connect,disconnect,im,p2p,music,email,video,web\n\
             aa:bb:cc:dd:ee:ff,lib-ap-07,lib,1700000100,1700003700,10,0,0,0,0,90\n\
             11:22:33:44:55:66,lib-ap-07,lib,1700000200,1700003800,0,50,0,0,0,0\n\
             aa:bb:cc:dd:ee:ff,gym-ap-01,gym,1700090000,1700093600,5,0,0,0,0,5\n",
        )
        .unwrap();
        let output = run_str(&format!(
            "convert --in {} --out {} --maps-dir {}",
            foreign.display(),
            sessions.display(),
            maps.display()
        ))
        .unwrap();
        assert!(
            output.contains("converted 3 sessions: 2 users, 2 APs, 2 controllers"),
            "{output}"
        );
        // The converted file is a valid canonical log.
        let records = csv::read_sessions(BufReader::new(File::open(&sessions).unwrap())).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].connect.day(), 0, "time must be rebased to day 0");
        // Maps resolve back to the original names.
        let user_map = std::fs::read_to_string(maps.join("user_map.csv")).unwrap();
        assert!(user_map.contains("0,aa:bb:cc:dd:ee:ff"), "{user_map}");
        assert!(user_map.contains("1,11:22:33:44:55:66"));
        // And analyze runs on the result.
        let output = run_str(&format!("analyze --sessions {}", sessions.display())).unwrap();
        assert!(output.contains("sessions: 3"), "{output}");
    }

    #[test]
    fn convert_rejects_malformed_input() {
        let foreign = tmp("bad_foreign.csv");
        std::fs::write(&foreign, "wrong,header\n").unwrap();
        let err = run_str(&format!(
            "convert --in {} --out /tmp/x.csv --maps-dir /tmp",
            foreign.display()
        ))
        .unwrap_err();
        assert!(err.to_string().contains("unexpected header"));

        std::fs::write(
            &foreign,
            "user,ap,controller,connect,disconnect,im,p2p,music,email,video,web\n\
             u1,a1,c1,200,100,0,0,0,0,0,0\n",
        )
        .unwrap();
        let err = run_str(&format!(
            "convert --in {} --out /tmp/x.csv --maps-dir /tmp",
            foreign.display()
        ))
        .unwrap_err();
        assert!(err.to_string().contains("disconnect precedes connect"));
    }

    #[test]
    fn replay_writes_metrics_snapshot_and_summary_renders_it() {
        let demands = tmp("mx_demands.csv");
        let sessions = tmp("mx_sessions.csv");
        let metrics = tmp("mx_metrics.json");
        run_str(&format!(
            "generate --out {} --users 60 --buildings 1 --aps-per-building 3 --days 3 --seed 4",
            demands.display()
        ))
        .unwrap();
        let output = run_str(&format!(
            "replay --demands {} --policy llf --out {} --metrics-out {}",
            demands.display(),
            sessions.display(),
            metrics.display()
        ))
        .unwrap();
        assert!(output.contains("wrote"), "{output}");
        assert!(output.contains("metrics (stable)"), "{output}");

        let text = std::fs::read_to_string(&metrics).unwrap();
        assert!(text.contains(s3_obs::SCHEMA_VERSION), "{text}");
        assert!(text.contains("wlan.engine.runs"), "{text}");
        // Stable snapshots exclude wall-clock timers.
        assert!(!text.contains("run_micros"), "{text}");

        let output = run_str(&format!("summary --metrics {}", metrics.display())).unwrap();
        assert!(output.contains("wlan.engine.runs"), "{output}");

        // CSV output is selected by extension.
        let metrics_csv = tmp("mx_metrics.csv");
        run_str(&format!(
            "analyze --sessions {} --metrics-out {} --metrics-full",
            sessions.display(),
            metrics_csv.display()
        ))
        .unwrap();
        let text = std::fs::read_to_string(&metrics_csv).unwrap();
        assert!(
            text.starts_with("name,kind,unit,stability,field,value"),
            "{text}"
        );
    }

    #[test]
    fn summary_rejects_malformed_snapshots() {
        let bad = tmp("bad_metrics.json");
        std::fs::write(&bad, "{\"schema\":\"nope/9\",\"metrics\":[]}").unwrap();
        let err = run_str(&format!("summary --metrics {}", bad.display())).unwrap_err();
        assert!(matches!(err, CliError::Snapshot(_)), "{err}");
    }

    #[test]
    fn missing_files_error_cleanly() {
        let err = run_str("analyze --sessions /nonexistent/file.csv").unwrap_err();
        assert!(matches!(err, CliError::Io(_)));
        let err =
            run_str("replay --demands /nonexistent.csv --policy llf --out /tmp/x.csv").unwrap_err();
        assert!(matches!(err, CliError::Io(_)));
    }

    #[test]
    fn trace_check_trace_round_trips_clean() {
        let demands = tmp("tr_demands.csv");
        let log = tmp("tr_decisions.jsonl");
        run_str(&format!(
            "generate --out {} --users 80 --buildings 2 --aps-per-building 3 --days 5 --seed 3",
            demands.display()
        ))
        .unwrap();
        let output = run_str(&format!(
            "trace --demands {} --policy s3 --out {} --train-days 3 --aps-per-building 3 \
             --rebalance",
            demands.display(),
            log.display()
        ))
        .unwrap();
        assert!(output.contains("traced"), "{output}");
        assert!(output.contains("decision records"), "{output}");

        let text = std::fs::read_to_string(&log).unwrap();
        assert!(text.starts_with("{\"format\":\"s3-dtrace/1\""), "{text}");

        let output = run_str(&format!("check-trace --trace {}", log.display())).unwrap();
        assert!(output.contains("all invariants hold"), "{output}");
    }

    #[test]
    fn check_trace_reports_corruptions_with_line_numbers() {
        let demands = tmp("ck_demands.csv");
        let log = tmp("ck_decisions.jsonl");
        run_str(&format!(
            "generate --out {} --users 40 --buildings 1 --aps-per-building 3 --days 3 --seed 6",
            demands.display()
        ))
        .unwrap();
        run_str(&format!(
            "trace --demands {} --policy llf --out {} --aps-per-building 3",
            demands.display(),
            log.display()
        ))
        .unwrap();

        // Point one selection at an AP outside its own candidate list.
        let text = std::fs::read_to_string(&log).unwrap();
        let (idx, line) = text
            .lines()
            .enumerate()
            .find(|(_, l)| l.contains("\"k\":\"select\""))
            .expect("log has selections");
        let corrupted = line.replace("\"ap\":", "\"ap\":9999, \"was\":");
        let text = text.replace(line, &corrupted);
        std::fs::write(&log, text).unwrap();

        let mut buf = Vec::new();
        let err = execute(
            parse(&argv(&format!("check-trace --trace {}", log.display()))).unwrap(),
            &mut buf,
        )
        .unwrap_err();
        assert!(matches!(err, CliError::Invalid(_)), "{err}");
        assert!(err.to_string().contains("violation"), "{err}");
        let printed = String::from_utf8(buf).unwrap();
        assert!(
            printed.contains(&format!("line {}", idx + 1)),
            "violation must carry the corrupted line number: {printed}"
        );
    }

    #[test]
    fn step_debugger_walks_a_log() {
        let demands = tmp("sd_demands.csv");
        let log = tmp("sd_decisions.jsonl");
        run_str(&format!(
            "generate --out {} --users 40 --buildings 1 --aps-per-building 3 --days 3 --seed 6",
            demands.display()
        ))
        .unwrap();
        run_str(&format!(
            "trace --demands {} --policy llf --out {} --aps-per-building 3 --rebalance",
            demands.display(),
            log.display()
        ))
        .unwrap();

        let script = "help\nstep 3\nbreak 0\nrun\naps\ninfo\nepoch\nquit\n";
        let mut buf = Vec::new();
        step_debug(&log, std::io::Cursor::new(script), &mut buf).unwrap();
        let out = String::from_utf8(buf).unwrap();
        assert!(out.contains("(s3dbg)"), "{out}");
        assert!(out.contains("commands:"), "{out}");
        assert!(out.contains("line 2: "), "stepping starts at line 2: {out}");
        assert!(out.contains("breakpoint on user 0"), "{out}");
        assert!(out.contains("capacity-bps"), "{out}");
        assert!(out.contains("placed "), "{out}");
        assert!(out.contains("rebalance tick"), "{out}");

        // Unknown commands and EOF are handled gracefully.
        let mut buf = Vec::new();
        step_debug(&log, std::io::Cursor::new("wat\n"), &mut buf).unwrap();
        let out = String::from_utf8(buf).unwrap();
        assert!(out.contains("unknown command"), "{out}");
    }

    #[test]
    fn trace_log_body_is_thread_independent() {
        let demands = tmp("th_demands.csv");
        run_str(&format!(
            "generate --out {} --users 60 --buildings 2 --aps-per-building 3 --days 4 --seed 12",
            demands.display()
        ))
        .unwrap();
        let mut bodies = Vec::new();
        for threads in [1usize, 4] {
            let log = tmp(&format!("th_decisions_{threads}.jsonl"));
            run_str(&format!(
                "trace --demands {} --policy s3 --out {} --train-days 2 --aps-per-building 3 \
                 --threads {threads}",
                demands.display(),
                log.display()
            ))
            .unwrap();
            let text = std::fs::read_to_string(&log).unwrap();
            let (header, body) = text.split_once('\n').unwrap();
            assert!(
                header.contains(&format!("\"threads\":{threads}")),
                "{header}"
            );
            bodies.push(body.to_string());
        }
        assert_eq!(bodies[0], bodies[1], "log bodies must be byte-identical");
    }

    #[test]
    fn compare_rejects_train_days_covering_everything() {
        let demands = tmp("cv_demands.csv");
        run_str(&format!(
            "generate --out {} --users 50 --buildings 1 --aps-per-building 3 --days 3 --seed 1",
            demands.display()
        ))
        .unwrap();
        let err = run_str(&format!(
            "compare --demands {} --train-days 3",
            demands.display()
        ))
        .unwrap_err();
        assert!(err.to_string().contains("must leave evaluation days"));
    }
}
