//! Implementation of the `s3wlan` command-line tool.
//!
//! Four subcommands cover the full workflow:
//!
//! * `generate` — synthesize a campus demand trace to CSV;
//! * `replay`   — replay a demand CSV under a policy, writing session CSV
//!   (or, with `--step --trace`, debug a recorded decision log);
//! * `analyze`  — measurement study over a session CSV (balance, events,
//!   typing);
//! * `compare`  — end-to-end S³-vs-LLF evaluation on one demand trace;
//! * `summary`  — render a `--metrics-out` snapshot as a table;
//! * `trace`    — replay while recording every engine decision to an
//!   `s3-dtrace/1` JSONL log;
//! * `check-trace` — validate a decision log against the engine
//!   invariants.
//!
//! The library half exists so the argument parsing and command logic are
//! unit-testable; `main.rs` is a thin shim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;

use std::fmt;

/// Top-level CLI errors.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line; the string is a user-facing message.
    Usage(String),
    /// An I/O failure.
    Io(std::io::Error),
    /// Malformed CSV input.
    Csv(s3_trace::csv::CsvError),
    /// A metrics snapshot failed to read, parse or write.
    Snapshot(s3_obs::SnapshotError),
    /// The input was well-formed but unusable (e.g. empty trace).
    Invalid(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}"),
            CliError::Io(e) => write!(f, "i/o error: {e}"),
            CliError::Csv(e) => write!(f, "{e}"),
            CliError::Snapshot(e) => write!(f, "metrics snapshot: {e}"),
            CliError::Invalid(msg) => write!(f, "invalid input: {msg}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Io(e) => Some(e),
            CliError::Csv(e) => Some(e),
            CliError::Snapshot(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<s3_trace::csv::CsvError> for CliError {
    fn from(e: s3_trace::csv::CsvError) -> Self {
        CliError::Csv(e)
    }
}

impl From<s3_obs::SnapshotError> for CliError {
    fn from(e: s3_obs::SnapshotError) -> Self {
        CliError::Snapshot(e)
    }
}

/// Entry point used by `main.rs`: dispatches `argv[1..]`.
///
/// # Errors
///
/// Returns any [`CliError`] raised by parsing or the executed command.
pub fn run<W: std::io::Write>(argv: &[String], out: &mut W) -> Result<(), CliError> {
    let command = args::parse(argv)?;
    commands::execute(command, out)
}

/// The usage text printed by `--help` and on usage errors.
pub const USAGE: &str = "\
s3wlan — social-aware WLAN load balancing toolkit

USAGE:
  s3wlan generate --out <demands.csv> [--scale campus|district|city] [--seed N]
                  [--users N] [--buildings N] [--aps-per-building N] [--days N]
                  [--scenario <spec>] [--faults <spec>] [--threads N]
  s3wlan replay   --demands <demands.csv> --policy <name> (see POLICIES)
                  --out <sessions.csv> [--seed N] [--train-days N] [--rebalance]
                  [--stream] [--threads N] [--shards N]
                  [--metrics-out <m.json|m.csv>] [--metrics-full] [--lenient]
  s3wlan convert  --in <foreign.csv> --out <sessions.csv> [--maps-dir <dir>]
                  [--lenient]
  s3wlan analyze  --sessions <sessions.csv> [--seed N] [--threads N]
                  [--metrics-out <m.json|m.csv>] [--metrics-full] [--lenient]
  s3wlan compare  --demands <demands.csv> [--seed N] [--train-days N] [--threads N]
                  [--metrics-out <m.json|m.csv>] [--metrics-full]
  s3wlan summary  --metrics <m.json>
  s3wlan trace    --demands <demands.csv> --policy <name> (see POLICIES)
                  --out <decisions.jsonl> [--seed N] [--train-days N]
                  [--rebalance] [--threads N] [--shards N] [--aps-per-building N]
                  [--lenient]
  s3wlan check-trace --trace <decisions.jsonl>
  s3wlan replay   --step --trace <decisions.jsonl>

THREADS:
  --threads N runs training and analysis on N worker threads (default:
  all available cores; 0 = auto). Results are bit-identical for any N.

SHARDS:
  --shards N partitions the simulation into N controller-domain shards,
  each replaying its own controllers on a dedicated worker thread and
  synchronizing at per-batch epoch barriers (default 1 = the unified
  single-threaded engine). Session CSVs, metrics snapshots and decision
  log bodies are byte-identical for any N for every policy whose registry
  entry is flagged shardable — all of them except random (one sequential
  RNG stream; single-shard only). generate --scale picks a topology
  preset (campus, district, or city: 10^6 users over 10^4 APs) for
  sharded benchmarking; explicit flags override preset fields.
  See docs/ENGINE.md.

STREAMING:
  replay --stream pulls demands straight off disk and writes each session
  record as it is placed, so peak memory is bounded by concurrent sessions
  — not trace length. The file must already be sorted by (arrive, user)
  (generate writes that order) and --rebalance is not supported. Output is
  byte-identical to the in-memory path. See docs/ENGINE.md.

INGESTION:
  CSV inputs are read strictly by default: the first malformed row aborts
  with its line number. --lenient skips malformed rows instead, printing a
  per-class skip report (and recording it in the metrics registry).
  generate --faults injects deterministic, seeded faults into the written
  CSV for robustness testing; the spec is a comma-separated list of
  corrupt=N, invert=N, id-overflow=N, dup=N, overlap=N, skew=C:SECS,
  outage=K:SECS, truncate. See docs/INGESTION.md.

SCENARIOS:
  generate --scenario stresses the synthesized trace with deterministic,
  seeded adversarial edits before it is written: flash-crowd surges,
  rolling AP outages, roaming users. The spec is a comma-separated list
  of surge=N:DAY:HOUR, outage=B:DAY:HOURS, roam=N, caps=uniform|tiered,
  and the presets benign, flash-crowd, rolling-outage, hetero-caps,
  roaming. See docs/STRATEGIES.md for the grammar and semantics.

TRACING:
  trace replays like replay but writes every engine decision (arrival
  batches, per-user selections with clique ids, rebalance moves, load
  reports, departures) to a versioned s3-dtrace/1 JSONL log instead of a
  session CSV. check-trace replays the log against the engine's
  invariants and exits nonzero with a line-numbered violation report.
  replay --step opens an interactive single-step debugger over a recorded
  log. Log bodies are byte-identical for any --threads or --shards
  value. See docs/TRACING.md for the record schema and invariant
  catalogue.

METRICS:
  --metrics-out writes the process-wide instrumentation registry as a
  schema-versioned snapshot (format by extension: .json or .csv) at end
  of run. The default snapshot holds only stable metrics and is
  byte-identical across thread counts for a fixed seed; --metrics-full
  adds volatile timing metrics. See docs/METRICS.md for every metric.

POLICIES (the strategy registry; see docs/STRATEGIES.md):
  llf          least traffic load first (the incumbent)
  least-users  least associated users first
  rssi         strongest signal (802.11 default)
  random       uniform random (single-shard only)
  s3           the social-aware scheme (trains on the first --train-days
               days of the trace, replayed under LLF)
  flow-lb      flow-level balancing: max headroom per flow (Li et al.)
  mab          per-user epsilon-greedy bandit over the candidate APs
               (Carrascosa & Bellalta)
  workload     demand-class routing: heavy flows by headroom, light by
               RSSI (Sandholm & Huberman)
";
