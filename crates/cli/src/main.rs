//! `s3wlan` — the command-line front end. All logic lives in the library
//! half of this crate (`s3_cli`) so it can be tested.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout();
    if let Err(e) = s3_cli::run(&argv, &mut stdout) {
        eprintln!("error: {e}");
        if matches!(e, s3_cli::CliError::Usage(_)) {
            eprintln!("\n{}", s3_cli::USAGE);
        }
        std::process::exit(2);
    }
}
