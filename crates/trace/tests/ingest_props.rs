//! Corrupt-corpus tests for the streaming ingestion layer: a checked-in
//! hand-authored fixture with one fault per class, plus property tests
//! that push seeded fault-injected corpora through both strict and
//! lenient ingestion.

use std::io::BufReader;

use proptest::prelude::*;

use s3_trace::csv::{self, CsvError};
use s3_trace::generator::{inject_csv_faults, CampusConfig, CampusGenerator, FaultSpec};
use s3_trace::ingest::{read_demands_lenient, read_sessions_lenient, RowFault};

const FIXTURE: &str = include_str!("fixtures/corrupt_sessions.csv");

#[test]
fn fixture_lenient_counts_every_fault_class_once() {
    let (records, report) = read_sessions_lenient(BufReader::new(FIXTURE.as_bytes())).unwrap();
    assert_eq!(report.rows_read, 8);
    assert_eq!(report.rows_ok, 3);
    assert_eq!(report.rows_skipped(), 5);
    assert_eq!(report.count(RowFault::BadInt), 1);
    assert_eq!(report.count(RowFault::FieldCount), 1);
    assert_eq!(report.count(RowFault::IdOverflow), 1);
    assert_eq!(report.count(RowFault::Inverted), 1);
    assert_eq!(report.count(RowFault::Duplicate), 1);
    // The surviving out-of-order row (line 9) is kept but flagged.
    assert_eq!(report.warnings(), 1);
    let users: Vec<u32> = records.iter().map(|r| r.user.raw()).collect();
    assert_eq!(users, [1, 2, 6]);
}

#[test]
fn fixture_strict_rejects_at_the_first_bad_line() {
    let err = csv::read_sessions(BufReader::new(FIXTURE.as_bytes())).unwrap_err();
    match err {
        CsvError::Parse { line, detail } => {
            assert_eq!(line, 4, "first corrupt row is line 4");
            assert!(detail.contains("connect"), "{detail}");
        }
        other => panic!("expected a parse error, got {other:?}"),
    }
}

fn demand_csv(seed: u64) -> String {
    let config = CampusConfig {
        users: 20,
        buildings: 2,
        aps_per_building: 3,
        days: 2,
        ..CampusConfig::tiny()
    };
    let campus = CampusGenerator::new(config, seed).generate();
    let mut buf = Vec::new();
    csv::write_demands(&mut buf, &campus.demands).unwrap();
    String::from_utf8(buf).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn lenient_ingest_matches_the_injected_fault_log(
        gen_seed in 0u64..100,
        fault_seed in 0u64..1_000,
        corrupt in 0usize..6,
        invert in 0usize..4,
        id_overflow in 0usize..4,
        dup in 0usize..4,
        overlap in 0usize..3,
        truncate_bit in 0u8..2,
    ) {
        let truncate = truncate_bit == 1;
        let spec = FaultSpec {
            corrupt,
            invert,
            id_overflow,
            duplicate: dup,
            overlap,
            truncate,
            ..FaultSpec::default()
        };
        let (faulty, log) = inject_csv_faults(&demand_csv(gen_seed), &spec, fault_seed);
        let (demands, report) =
            read_demands_lenient(BufReader::new(faulty.as_bytes())).unwrap();
        // Every skip the injector logged is classified, exactly.
        for fault in RowFault::ALL {
            if let Some(expected) = log.expected_count(fault) {
                prop_assert_eq!(
                    report.count(fault), expected,
                    "class {} mismatch", fault.label()
                );
            }
        }
        prop_assert_eq!(report.rows_skipped(), log.expected_skips());
        prop_assert_eq!(report.rows_ok as usize, demands.len());
        prop_assert_eq!(report.rows_read, report.rows_ok + report.rows_skipped());
    }

    #[test]
    fn strict_ingest_rejects_any_corrupted_corpus_with_a_line_number(
        gen_seed in 0u64..50,
        fault_seed in 0u64..1_000,
        corrupt in 1usize..5,
    ) {
        let spec = FaultSpec { corrupt, ..FaultSpec::default() };
        let (faulty, log) = inject_csv_faults(&demand_csv(gen_seed), &spec, fault_seed);
        prop_assert!(log.total() > 0, "corpus is large enough for every requested fault");
        let err = csv::read_demands(BufReader::new(faulty.as_bytes())).unwrap_err();
        match err {
            CsvError::Parse { line, .. } => prop_assert!(line >= 2),
            other => {
                return Err(TestCaseError::fail(format!("expected parse error, got {other:?}")))
            }
        }
    }

    #[test]
    fn lenient_ingest_never_panics_on_arbitrary_byte_mangling(
        gen_seed in 0u64..20,
        flips in prop::collection::vec((0usize..5_000, 0u8..=255u8), 0usize..40),
    ) {
        let mut bytes = demand_csv(gen_seed).into_bytes();
        for (pos, val) in flips {
            let len = bytes.len();
            bytes[pos % len] = val;
        }
        // Mangling may hit the header (a hard error) or any row; neither
        // may panic, and a surviving report must stay self-consistent.
        if let Ok(text) = String::from_utf8(bytes) {
            if let Ok((demands, report)) =
                read_demands_lenient(BufReader::new(text.as_bytes()))
            {
                prop_assert_eq!(report.rows_ok as usize, demands.len());
                prop_assert_eq!(
                    report.rows_read,
                    report.rows_ok + report.rows_skipped()
                );
            }
        }
    }
}
