//! Property tests over the synthetic campus generator: structural
//! invariants must hold for any seed and any small configuration.

use proptest::prelude::*;

use s3_trace::generator::{CampusConfig, CampusGenerator, USER_TYPE_COUNT};
use s3_trace::{csv, SessionRecord, TraceStore};
use s3_types::ApId;

fn small_config(users: usize, buildings: usize, days: u64) -> CampusConfig {
    CampusConfig {
        users,
        buildings,
        aps_per_building: 3,
        days,
        ..CampusConfig::tiny()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn generated_campus_is_well_formed(
        seed in 0u64..1_000,
        users in 10usize..80,
        buildings in 1usize..4,
        days in 1u64..5,
    ) {
        let config = small_config(users, buildings, days);
        let campus = CampusGenerator::new(config, seed).generate();
        // Sorted demands; positive-length sessions in valid buildings.
        for w in campus.demands.windows(2) {
            prop_assert!(w[0].arrive <= w[1].arrive);
        }
        for d in &campus.demands {
            prop_assert!(d.depart > d.arrive);
            prop_assert!(d.building.index() < buildings);
            prop_assert!(d.user.index() < users);
            prop_assert_eq!(d.controller, campus.config.controller_of(d.building));
        }
        // Ground truth is complete and in range.
        let truth = &campus.ground_truth;
        prop_assert_eq!(truth.user_types.len(), users);
        prop_assert!(truth.user_types.iter().all(|&t| t < USER_TYPE_COUNT));
        for g in &truth.groups {
            prop_assert!(g.members.len() >= 2);
            prop_assert!(g.building.index() < buildings);
            // No duplicate members inside a group.
            let unique: std::collections::HashSet<_> = g.members.iter().collect();
            prop_assert_eq!(unique.len(), g.members.len());
        }
        // No user belongs to two groups (partition property).
        let mut seen = std::collections::HashSet::new();
        for g in &truth.groups {
            for m in &g.members {
                prop_assert!(seen.insert(*m), "user {m} in two groups");
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed(seed in 0u64..500) {
        let config = small_config(20, 2, 2);
        let a = CampusGenerator::new(config.clone(), seed).generate();
        let b = CampusGenerator::new(config, seed).generate();
        prop_assert_eq!(a.demands, b.demands);
    }

    #[test]
    fn demand_csv_round_trips_generated_traces(seed in 0u64..200) {
        let campus = CampusGenerator::new(small_config(15, 2, 2), seed).generate();
        let mut buf = Vec::new();
        csv::write_demands(&mut buf, &campus.demands).unwrap();
        let back = csv::read_demands(std::io::BufReader::new(buf.as_slice())).unwrap();
        prop_assert_eq!(back, campus.demands);
    }

    #[test]
    fn store_queries_are_consistent(seed in 0u64..200) {
        let campus = CampusGenerator::new(small_config(25, 2, 3), seed).generate();
        // Fabricate records by assigning everything to AP 0 of the building.
        let records: Vec<SessionRecord> = campus
            .demands
            .iter()
            .map(|d| SessionRecord::from_demand(
                d,
                ApId::new((d.building.index() * 3) as u32),
            ))
            .collect();
        let expected_total: u64 = records.iter().map(|r| r.total_volume().as_u64()).sum();
        let store = TraceStore::new(records);
        // Per-user session counts sum to the record count.
        let by_user: usize = store
            .users()
            .iter()
            .map(|&u| store.sessions_of(u).count())
            .sum();
        prop_assert_eq!(by_user, store.len());
        // Window volumes over the whole span conserve totals (up to
        // rounding of one byte per record per day touched).
        let (first, last) = store.day_range().unwrap();
        let mut total = 0u64;
        for &u in &store.users() {
            let v = store.user_window_volumes(u, first, last);
            total += v.iter().map(|b| b.as_u64()).sum::<u64>();
        }
        let tolerance = store.len() as u64 * (last - first + 2);
        prop_assert!(expected_total - total <= tolerance,
            "expected {expected_total}, got {total}");
    }
}
