//! Application-profile archetypes and per-user profile synthesis.
//!
//! The paper's k-means finds four user types with distinct dominant realms
//! (Fig. 8). The generator plants exactly that structure: every user gets a
//! latent type, a personal base profile drawn around the type's centroid,
//! a fixed weekly (day-of-week) modulation, and small per-day noise. The
//! weekly modulation is what makes the NMI-vs-history curve (Fig. 6) rise
//! and plateau once the history window covers a couple of weeks.

use rand::rngs::StdRng;

use s3_stats::rng::gamma;
use s3_types::{AppMix, APP_CATEGORY_COUNT};

/// Number of latent user types the generator plants (the paper finds 4).
pub const USER_TYPE_COUNT: usize = 4;

/// Centroid profile of each latent type, in [`s3_types::AppCategory::ALL`]
/// order (IM, P2P, music, e-mail, video, web).
///
/// * type 0 — messaging / web browsing heavy ("office" users);
/// * type 1 — P2P dominant (bulk downloaders);
/// * type 2 — video streaming dominant;
/// * type 3 — music + e-mail leaning.
pub const TYPE_CENTROIDS: [[f64; APP_CATEGORY_COUNT]; USER_TYPE_COUNT] = [
    [0.30, 0.05, 0.10, 0.10, 0.05, 0.40],
    [0.05, 0.50, 0.05, 0.05, 0.20, 0.15],
    [0.10, 0.05, 0.10, 0.05, 0.50, 0.20],
    [0.10, 0.05, 0.35, 0.25, 0.05, 0.20],
];

/// Traffic-volume multiplier per type (P2P/video users are heavier).
pub const TYPE_VOLUME_FACTOR: [f64; USER_TYPE_COUNT] = [1.0, 2.5, 2.0, 0.8];

/// The centroid of a latent type as an [`AppMix`].
pub fn type_centroid(user_type: usize) -> AppMix {
    AppMix::from_volumes(TYPE_CENTROIDS[user_type]).expect("centroids are valid mixes")
}

/// Draws a Dirichlet sample with per-component concentration
/// `alpha_i = concentration · base_i`, i.e. centered on `base` with spread
/// controlled by `concentration` (higher = tighter).
pub fn dirichlet_around(rng: &mut StdRng, base: &AppMix, concentration: f64) -> AppMix {
    let mut draws = [0.0; APP_CATEGORY_COUNT];
    let mut total = 0.0;
    for (i, &share) in base.shares().iter().enumerate() {
        // Floor the per-component alpha so zero-share realms stay reachable.
        let alpha = (concentration * share).max(0.05);
        draws[i] = gamma(rng, alpha);
        total += draws[i];
    }
    if total <= 0.0 {
        return *base;
    }
    for d in &mut draws {
        *d /= total;
    }
    AppMix::from_volumes(draws).unwrap_or(*base)
}

/// A user's full profile model: latent type, base mix, weekly modulation.
#[derive(Debug, Clone)]
pub struct UserProfile {
    /// Latent type index, `0..USER_TYPE_COUNT`.
    pub user_type: usize,
    /// The user's long-run average mix.
    pub base: AppMix,
    /// Per-day-of-week mixes (index 0 = trace day 0's weekday).
    pub weekly: [AppMix; 7],
    /// Per-user traffic scale multiplier (log-normal population spread).
    pub volume_scale: f64,
}

impl UserProfile {
    /// Synthesizes a user of `user_type`.
    ///
    /// `base_concentration` controls user-to-user spread around the type
    /// centroid; `weekly_concentration` controls day-of-week spread around
    /// the user's base.
    pub fn synthesize(
        rng: &mut StdRng,
        user_type: usize,
        base_concentration: f64,
        weekly_concentration: f64,
        volume_scale: f64,
    ) -> UserProfile {
        let centroid = type_centroid(user_type);
        let base = dirichlet_around(rng, &centroid, base_concentration);
        let weekly = std::array::from_fn(|_| dirichlet_around(rng, &base, weekly_concentration));
        UserProfile {
            user_type,
            base,
            weekly,
            volume_scale,
        }
    }

    /// The user's expected mix on trace day `day` before daily noise.
    pub fn mix_for_day(&self, day: u64) -> &AppMix {
        &self.weekly[(day % 7) as usize]
    }

    /// The realized mix on `day`: weekly pattern perturbed by daily noise
    /// with concentration `day_concentration`.
    pub fn daily_mix(&self, rng: &mut StdRng, day: u64, day_concentration: f64) -> AppMix {
        dirichlet_around(rng, self.mix_for_day(day), day_concentration)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use s3_types::AppCategory;

    #[test]
    fn centroids_are_distinct_and_valid() {
        for t in 0..USER_TYPE_COUNT {
            let c = type_centroid(t);
            assert!((c.shares().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
        assert_eq!(type_centroid(0).dominant(), AppCategory::WebBrowsing);
        assert_eq!(type_centroid(1).dominant(), AppCategory::P2p);
        assert_eq!(type_centroid(2).dominant(), AppCategory::Video);
        assert_eq!(type_centroid(3).dominant(), AppCategory::Music);
    }

    #[test]
    fn dirichlet_around_concentrates_with_high_alpha() {
        let mut rng = StdRng::seed_from_u64(1);
        let base = type_centroid(1);
        let tight: f64 = (0..100)
            .map(|_| dirichlet_around(&mut rng, &base, 500.0).tv_distance(&base))
            .sum::<f64>()
            / 100.0;
        let loose: f64 = (0..100)
            .map(|_| dirichlet_around(&mut rng, &base, 5.0).tv_distance(&base))
            .sum::<f64>()
            / 100.0;
        assert!(tight < loose, "tight {tight} loose {loose}");
        assert!(tight < 0.05);
    }

    #[test]
    fn synthesized_profile_stays_near_centroid() {
        let mut rng = StdRng::seed_from_u64(2);
        for t in 0..USER_TYPE_COUNT {
            let profile = UserProfile::synthesize(&mut rng, t, 150.0, 300.0, 1.0);
            assert_eq!(profile.user_type, t);
            assert!(
                profile.base.tv_distance(&type_centroid(t)) < 0.3,
                "type {t} drifted too far"
            );
            // Weekly mixes are near the base.
            for w in &profile.weekly {
                assert!(w.tv_distance(&profile.base) < 0.3);
            }
        }
    }

    #[test]
    fn weekly_pattern_repeats_with_period_seven() {
        let mut rng = StdRng::seed_from_u64(3);
        let profile = UserProfile::synthesize(&mut rng, 0, 100.0, 100.0, 1.0);
        assert_eq!(profile.mix_for_day(3), profile.mix_for_day(10));
        assert_eq!(profile.mix_for_day(0), profile.mix_for_day(7));
    }

    #[test]
    fn daily_mix_is_noisy_but_close() {
        let mut rng = StdRng::seed_from_u64(4);
        let profile = UserProfile::synthesize(&mut rng, 2, 150.0, 300.0, 1.0);
        let day = 5;
        let expected = *profile.mix_for_day(day);
        let mean_dist: f64 = (0..50)
            .map(|_| {
                profile
                    .daily_mix(&mut rng, day, 200.0)
                    .tv_distance(&expected)
            })
            .sum::<f64>()
            / 50.0;
        assert!(mean_dist < 0.1, "daily noise too large: {mean_dist}");
    }

    #[test]
    fn users_of_same_type_cluster_closer_than_cross_type() {
        let mut rng = StdRng::seed_from_u64(5);
        let a1 = UserProfile::synthesize(&mut rng, 1, 150.0, 300.0, 1.0);
        let a2 = UserProfile::synthesize(&mut rng, 1, 150.0, 300.0, 1.0);
        let b = UserProfile::synthesize(&mut rng, 3, 150.0, 300.0, 1.0);
        assert!(a1.base.tv_distance(&a2.base) < a1.base.tv_distance(&b.base));
    }
}
