//! Deterministic, seeded fault injection for trace corpora.
//!
//! Real controller logs are dirty: the Dartmouth/USC campus traces needed
//! extensive cleaning of duplicated, overlapping and clock-skewed sessions
//! before any sociality mining. The generator can only emit clean CSV, so
//! this module corrupts a corpus *reproducibly*: the same text, spec and
//! seed always yield the same corrupted bytes, making corrupted corpora
//! checked-in-quality test artifacts (`s3wlan generate --faults <spec>`).
//!
//! The injector works on CSV **text**, not parsed records — it must be
//! able to produce rows no parser would accept. It applies to both
//! session and demand files: the columns it touches (id in column 1,
//! controller in column 3, interval in columns 4–5) line up in the two
//! formats. Fault kinds map onto the lenient reader's
//! [`crate::ingest::RowFault`] taxonomy so tests can assert that an
//! [`crate::ingest::IngestReport`] matches the injected [`FaultLog`]
//! exactly.
//!
//! Spec grammar (comma-separated, see `docs/INGESTION.md`):
//!
//! ```text
//! corrupt=N      N rows garbled (alternating unparsable int / truncated fields)
//! invert=N       N rows with start and end swapped
//! id-overflow=N  N rows whose user id is pushed past u32::MAX
//! dup=N          N rows duplicated verbatim
//! overlap=N      N rows cloned with a half-duration shift (valid overlap)
//! skew=C:S       all rows of C controllers shifted by ±S seconds
//! outage=K:S     K gaps: rows of one controller within an S-second window dropped
//! truncate       the final record is cut off mid-row
//! ```

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use s3_obs::{Desc, Stability, Unit};

use crate::ingest::RowFault;

// Injection metrics (documented in docs/METRICS.md).
static FAULTS_INJECTED: Desc = Desc {
    name: "trace.faults.injected",
    help: "Faults injected into generated corpora (all kinds)",
    unit: Unit::Count,
    stability: Stability::Stable,
};
static FAULT_ROWS_DROPPED: Desc = Desc {
    name: "trace.faults.rows_dropped",
    help: "Rows removed from generated corpora by injected AP-outage gaps",
    unit: Unit::Count,
    stability: Stability::Stable,
};

/// What to inject, parsed from the `--faults` spec string.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSpec {
    /// Rows garbled in place (alternating bad-int and field-count kinds).
    pub corrupt: usize,
    /// Rows whose interval endpoints are swapped.
    pub invert: usize,
    /// Rows whose user id is pushed past `u32::MAX`.
    pub id_overflow: usize,
    /// Rows duplicated verbatim.
    pub duplicate: usize,
    /// Rows cloned with a half-duration shift (valid overlapping session).
    pub overlap: usize,
    /// Number of controllers whose clock is skewed.
    pub skew_controllers: usize,
    /// Skew magnitude in seconds (alternating sign per controller).
    pub skew_secs: u64,
    /// Number of AP-outage gaps to punch into the corpus.
    pub outages: usize,
    /// Length of each outage window in seconds.
    pub outage_secs: u64,
    /// Cut the final record off mid-row.
    pub truncate: bool,
}

impl FaultSpec {
    /// Parses the `--faults` grammar (see the module docs).
    ///
    /// # Errors
    ///
    /// A human-readable message naming the offending element.
    pub fn parse(spec: &str) -> Result<FaultSpec, String> {
        let mut out = FaultSpec::default();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = match part.split_once('=') {
                Some((k, v)) => (k.trim(), Some(v.trim())),
                None => (part, None),
            };
            let count = |v: Option<&str>| -> Result<usize, String> {
                v.ok_or_else(|| format!("fault {key:?} needs =N"))?
                    .parse::<usize>()
                    .map_err(|e| format!("bad count in fault element {part:?}: {e}"))
            };
            let pair = |v: Option<&str>| -> Result<(usize, u64), String> {
                let v = v.ok_or_else(|| format!("fault {key:?} needs =COUNT:SECONDS"))?;
                let (c, s) = v
                    .split_once(':')
                    .ok_or_else(|| format!("fault element {part:?} needs COUNT:SECONDS"))?;
                let c = c
                    .parse::<usize>()
                    .map_err(|e| format!("bad count in fault element {part:?}: {e}"))?;
                let s = s
                    .parse::<u64>()
                    .map_err(|e| format!("bad seconds in fault element {part:?}: {e}"))?;
                Ok((c, s))
            };
            match key {
                "corrupt" => out.corrupt = count(value)?,
                "invert" => out.invert = count(value)?,
                "id-overflow" => out.id_overflow = count(value)?,
                "dup" => out.duplicate = count(value)?,
                "overlap" => out.overlap = count(value)?,
                "skew" => (out.skew_controllers, out.skew_secs) = pair(value)?,
                "outage" => (out.outages, out.outage_secs) = pair(value)?,
                "truncate" => {
                    if value.is_some() {
                        return Err("fault \"truncate\" takes no value".to_string());
                    }
                    out.truncate = true;
                }
                _ => {
                    return Err(format!(
                        "unknown fault element {part:?} (known: corrupt, invert, \
                         id-overflow, dup, overlap, skew, outage, truncate)"
                    ))
                }
            }
        }
        Ok(out)
    }

    /// True when the spec injects nothing.
    pub fn is_empty(&self) -> bool {
        *self == FaultSpec::default()
    }
}

/// Exactly what one [`inject_csv_faults`] call did — per-kind counts for
/// the faults actually injected (requests are clamped when the corpus is
/// too small to host them all on distinct rows).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultLog {
    /// Rows garbled into an unparsable integer field.
    pub corrupt_bad_int: u64,
    /// Rows garbled into a wrong field count.
    pub corrupt_field_count: u64,
    /// Rows whose interval was inverted.
    pub inverted: u64,
    /// Rows whose user id was pushed past `u32::MAX`.
    pub id_overflow: u64,
    /// Verbatim duplicate rows inserted.
    pub duplicated: u64,
    /// Shifted overlapping clones inserted (valid rows).
    pub overlapping: u64,
    /// Valid rows whose timestamps were skewed (valid rows, reordered).
    pub skewed_rows: u64,
    /// Rows dropped by outage gaps.
    pub outage_dropped: u64,
    /// Whether the final record was cut off.
    pub truncated: bool,
}

impl FaultLog {
    /// Total faults injected (dropped rows and the truncation included).
    pub fn total(&self) -> u64 {
        self.corrupt_bad_int
            + self.corrupt_field_count
            + self.inverted
            + self.id_overflow
            + self.duplicated
            + self.overlapping
            + self.skewed_rows
            + self.outage_dropped
            + u64::from(self.truncated)
    }

    /// The number of rows lenient ingestion must skip for `fault`, or
    /// `None` when the count is corpus-dependent (non-monotone warnings
    /// depend on neighboring rows, not only on the injected faults).
    pub fn expected_count(&self, fault: RowFault) -> Option<u64> {
        match fault {
            RowFault::FieldCount => Some(self.corrupt_field_count + u64::from(self.truncated)),
            RowFault::BadInt => Some(self.corrupt_bad_int),
            RowFault::IdOverflow => Some(self.id_overflow),
            RowFault::Inverted => Some(self.inverted),
            RowFault::Duplicate => Some(self.duplicated),
            RowFault::NonMonotone => None,
        }
    }

    /// Total rows lenient ingestion must skip.
    pub fn expected_skips(&self) -> u64 {
        RowFault::ALL
            .iter()
            .filter_map(|&f| self.expected_count(f))
            .sum()
    }

    /// One-line human-readable rendering for the CLI.
    pub fn summary(&self) -> String {
        format!(
            "injected {} faults: bad-int {}, bad-field-count {}, inverted {}, \
             id-overflow {}, dup {}, overlap {}, skewed {}, outage-dropped {}, truncated {}",
            self.total(),
            self.corrupt_bad_int,
            self.corrupt_field_count,
            self.inverted,
            self.id_overflow,
            self.duplicated,
            self.overlapping,
            self.skewed_rows,
            self.outage_dropped,
            self.truncated
        )
    }
}

/// The columns shared by session and demand CSVs that the injector reads.
fn row_numbers(line: &str) -> Option<(u64, u64, u64, u64)> {
    let mut it = line.split(',');
    let user = it.next()?.trim().parse().ok()?;
    let _mid = it.next()?;
    let controller = it.next()?.trim().parse().ok()?;
    let start = it.next()?.trim().parse().ok()?;
    let end = it.next()?.trim().parse().ok()?;
    Some((user, controller, start, end))
}

fn set_fields(line: &str, edits: &[(usize, String)]) -> String {
    let mut fields: Vec<String> = line.split(',').map(str::to_string).collect();
    for (idx, value) in edits {
        if *idx < fields.len() {
            fields[*idx] = value.clone();
        }
    }
    fields.join(",")
}

/// Corrupts `csv` (header + data rows) according to `spec`, reproducibly
/// for a given `seed`. Returns the corrupted text and the exact log of
/// what was injected.
///
/// Faults target pairwise-distinct rows, so the log's per-kind counts map
/// one-to-one onto the skip counts a lenient ingest of the result reports
/// (see [`FaultLog::expected_count`]). When the corpus has fewer eligible
/// rows than the spec requests, the surplus is dropped and the log shows
/// the smaller number.
pub fn inject_csv_faults(csv: &str, spec: &FaultSpec, seed: u64) -> (String, FaultLog) {
    let mut log = FaultLog::default();
    let mut it = csv.lines();
    let Some(header) = it.next() else {
        return (csv.to_string(), log);
    };
    let mut lines: Vec<String> = it
        .filter(|l| !l.trim().is_empty())
        .map(str::to_string)
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);

    // 1. Outage gaps: drop every row of one controller inside a window
    //    anchored at a random row (never emptying the corpus).
    for _ in 0..spec.outages {
        if lines.len() <= 1 {
            break;
        }
        let anchor = rng.random_range(0..lines.len());
        let Some((_, controller, start, _)) = row_numbers(&lines[anchor]) else {
            continue;
        };
        let window_end = start.saturating_add(spec.outage_secs);
        let in_gap: Vec<bool> = lines
            .iter()
            .map(|line| {
                row_numbers(line)
                    .is_some_and(|(_, c, s, _)| c == controller && s >= start && s < window_end)
            })
            .collect();
        let gap_total = in_gap.iter().filter(|&&g| g).count();
        let max_drop = gap_total.min(lines.len() - 1);
        let mut kept = Vec::with_capacity(lines.len() - max_drop);
        let mut dropped = 0usize;
        for (i, line) in lines.drain(..).enumerate() {
            if in_gap[i] && dropped < max_drop {
                dropped += 1;
            } else {
                kept.push(line);
            }
        }
        log.outage_dropped += dropped as u64;
        lines = kept;
    }

    // 2. Clock skew: shift every row of the chosen controllers by ±S.
    if spec.skew_controllers > 0 && spec.skew_secs > 0 {
        let mut controllers: Vec<u64> = lines
            .iter()
            .filter_map(|l| row_numbers(l).map(|(_, c, _, _)| c))
            .collect();
        controllers.sort_unstable();
        controllers.dedup();
        rng.shuffle(&mut controllers);
        controllers.truncate(spec.skew_controllers);
        for (i, &controller) in controllers.iter().enumerate() {
            let negative = i % 2 == 1;
            for line in &mut lines {
                let Some((_, c, start, end)) = row_numbers(line) else {
                    continue;
                };
                if c != controller {
                    continue;
                }
                // A negative skew that would underflow flips sign so the
                // row stays a valid (if reordered) record.
                let delta = spec.skew_secs;
                let (s2, e2) = if negative && start >= delta {
                    (start - delta, end - delta)
                } else {
                    (start + delta, end + delta)
                };
                *line = set_fields(line, &[(3, s2.to_string()), (4, e2.to_string())]);
                log.skewed_rows += 1;
            }
        }
    }

    // 3. Row-level faults on pairwise-distinct targets, so per-kind counts
    //    stay exact. The final row is reserved when truncation is on.
    let mut pool: Vec<usize> = (0..lines.len()).collect();
    if spec.truncate && !pool.is_empty() {
        pool.pop();
    }
    let take = |rng: &mut StdRng, pool: &mut Vec<usize>| -> Option<usize> {
        if pool.is_empty() {
            None
        } else {
            let j = rng.random_range(0..pool.len());
            Some(pool.swap_remove(j))
        }
    };

    for k in 0..spec.corrupt {
        let Some(idx) = take(&mut rng, &mut pool) else {
            break;
        };
        if k % 2 == 0 {
            lines[idx] = set_fields(&lines[idx], &[(0, "corrupt".to_string())]);
            log.corrupt_bad_int += 1;
        } else {
            let keep: Vec<&str> = lines[idx].split(',').take(3).collect();
            lines[idx] = keep.join(",");
            log.corrupt_field_count += 1;
        }
    }
    for _ in 0..spec.invert {
        let Some(idx) = take(&mut rng, &mut pool) else {
            break;
        };
        let Some((_, _, start, end)) = row_numbers(&lines[idx]) else {
            continue;
        };
        let (s2, e2) = if start == end {
            (end + 1, end)
        } else {
            (end, start)
        };
        lines[idx] = set_fields(&lines[idx], &[(3, s2.to_string()), (4, e2.to_string())]);
        log.inverted += 1;
    }
    for _ in 0..spec.id_overflow {
        let Some(idx) = take(&mut rng, &mut pool) else {
            break;
        };
        let Some((user, _, _, _)) = row_numbers(&lines[idx]) else {
            continue;
        };
        let big = u64::from(u32::MAX) + 1 + user;
        lines[idx] = set_fields(&lines[idx], &[(0, big.to_string())]);
        log.id_overflow += 1;
    }
    let mut inserts: Vec<(usize, String)> = Vec::new();
    for _ in 0..spec.duplicate {
        let Some(idx) = take(&mut rng, &mut pool) else {
            break;
        };
        inserts.push((idx, lines[idx].clone()));
        log.duplicated += 1;
    }
    for _ in 0..spec.overlap {
        let Some(idx) = take(&mut rng, &mut pool) else {
            break;
        };
        let Some((_, _, start, end)) = row_numbers(&lines[idx]) else {
            continue;
        };
        let shift = ((end - start) / 2).max(1);
        let clone = set_fields(
            &lines[idx],
            &[
                (3, (start + shift).to_string()),
                (4, (end + shift).to_string()),
            ],
        );
        inserts.push((idx, clone));
        log.overlapping += 1;
    }
    inserts.sort_by_key(|&(idx, _)| std::cmp::Reverse(idx));
    for (idx, line) in inserts {
        lines.insert(idx + 1, line);
    }

    // 4. Truncated final record: cut after the fifth field's comma so the
    //    row deterministically fails the field-count check.
    if spec.truncate {
        if let Some(last) = lines.last_mut() {
            let cut = last
                .match_indices(',')
                .nth(4)
                .map(|(i, _)| i)
                .unwrap_or(last.len() / 2);
            last.truncate(cut);
            log.truncated = true;
        }
    }

    let registry = s3_obs::global();
    registry.counter(&FAULTS_INJECTED).add(log.total());
    registry
        .counter(&FAULT_ROWS_DROPPED)
        .add(log.outage_dropped);

    let mut out = String::with_capacity(csv.len() + 64);
    out.push_str(header);
    out.push('\n');
    for line in &lines {
        out.push_str(line);
        out.push('\n');
    }
    (out, log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csv::write_demands;
    use crate::generator::{CampusConfig, CampusGenerator};
    use crate::ingest::read_demands_lenient;
    use std::io::BufReader;

    fn demand_csv(seed: u64) -> String {
        let campus = CampusGenerator::new(CampusConfig::tiny(), seed).generate();
        let mut buf = Vec::new();
        write_demands(&mut buf, &campus.demands).unwrap();
        String::from_utf8(buf).unwrap()
    }

    #[test]
    fn spec_grammar_round_trip() {
        let spec = FaultSpec::parse(
            "corrupt=3, dup=2,overlap=1,invert=2,id-overflow=1,skew=2:600,outage=1:3600,truncate",
        )
        .unwrap();
        assert_eq!(spec.corrupt, 3);
        assert_eq!(spec.duplicate, 2);
        assert_eq!(spec.overlap, 1);
        assert_eq!(spec.invert, 2);
        assert_eq!(spec.id_overflow, 1);
        assert_eq!((spec.skew_controllers, spec.skew_secs), (2, 600));
        assert_eq!((spec.outages, spec.outage_secs), (1, 3600));
        assert!(spec.truncate);
        assert!(!spec.is_empty());
        assert!(FaultSpec::parse("").unwrap().is_empty());
    }

    #[test]
    fn spec_grammar_rejects_junk() {
        assert!(FaultSpec::parse("corrupt").is_err());
        assert!(FaultSpec::parse("corrupt=x").is_err());
        assert!(FaultSpec::parse("skew=2").is_err());
        assert!(FaultSpec::parse("frobnicate=1").is_err());
        assert!(FaultSpec::parse("truncate=1").is_err());
    }

    #[test]
    fn injection_is_deterministic() {
        let clean = demand_csv(42);
        let spec = FaultSpec::parse("corrupt=4,dup=3,invert=2,skew=1:600,truncate").unwrap();
        let (a, log_a) = inject_csv_faults(&clean, &spec, 7);
        let (b, log_b) = inject_csv_faults(&clean, &spec, 7);
        assert_eq!(a, b, "same seed must corrupt identically");
        assert_eq!(log_a, log_b);
        let (c, _) = inject_csv_faults(&clean, &spec, 8);
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn empty_spec_is_identity_modulo_blank_lines() {
        let clean = demand_csv(1);
        let (out, log) = inject_csv_faults(&clean, &FaultSpec::default(), 0);
        assert_eq!(out, clean);
        assert_eq!(log, FaultLog::default());
    }

    #[test]
    fn lenient_report_matches_fault_log_exactly() {
        let clean = demand_csv(42);
        let spec = FaultSpec::parse(
            "corrupt=5,invert=3,id-overflow=2,dup=4,overlap=3,skew=1:900,outage=1:1800,truncate",
        )
        .unwrap();
        let (dirty, log) = inject_csv_faults(&clean, &spec, 11);
        assert_eq!(log.corrupt_bad_int, 3);
        assert_eq!(log.corrupt_field_count, 2);
        assert!(log.truncated);
        let (rows, report) = read_demands_lenient(BufReader::new(dirty.as_bytes())).unwrap();
        for fault in RowFault::ALL {
            if let Some(expected) = log.expected_count(fault) {
                assert_eq!(
                    report.count(fault),
                    expected,
                    "class {} must match the log ({})",
                    fault.label(),
                    log.summary()
                );
            }
        }
        assert_eq!(report.rows_skipped(), log.expected_skips());
        assert!(!rows.is_empty(), "most of the corpus must survive");
        assert!(
            report.warnings() > 0,
            "clock skew must reorder at least one row"
        );
    }

    #[test]
    fn strict_ingest_rejects_the_corrupted_corpus_with_a_line_number() {
        let clean = demand_csv(42);
        let spec = FaultSpec::parse("corrupt=2").unwrap();
        let (dirty, _) = inject_csv_faults(&clean, &spec, 3);
        let err = crate::csv::read_demands(BufReader::new(dirty.as_bytes())).unwrap_err();
        match err {
            crate::csv::CsvError::Parse { line, .. } => assert!(line >= 2),
            other => panic!("expected a parse error, got {other}"),
        }
    }

    #[test]
    fn outage_punches_a_hole_but_keeps_the_corpus_readable() {
        let clean = demand_csv(9);
        let spec = FaultSpec::parse("outage=2:7200").unwrap();
        let (dirty, log) = inject_csv_faults(&clean, &spec, 5);
        assert!(log.outage_dropped > 0, "a gap must drop rows");
        let (rows, report) = read_demands_lenient(BufReader::new(dirty.as_bytes())).unwrap();
        assert_eq!(report.rows_skipped(), 0, "gaps leave only valid rows");
        assert_eq!(
            rows.len() as u64 + log.outage_dropped,
            clean.lines().count() as u64 - 1,
            "dropped plus surviving rows must account for the corpus"
        );
    }
}
