//! The synthetic campus trace generator.
//!
//! Substitutes the paper's proprietary SJTU trace (see DESIGN.md): it
//! synthesizes a campus of buildings (one WLAN controller each), a
//! population of users with latent application-profile types, social groups
//! with weekly class schedules whose members arrive and leave together, and
//! a stream of independent diurnal "noise" sessions.
//!
//! The generator emits [`SessionDemand`]s — *who* is present *where*,
//! *when*, with *what* traffic — and leaves AP choice to a selection policy
//! (that is the variable under study). [`Campus::ground_truth`] retains the
//! planted structure for validation; the S³ algorithm never sees it.

pub mod faults;
mod profiles;
pub mod scenario;
mod schedule;

pub use faults::{inject_csv_faults, FaultLog, FaultSpec};
pub use profiles::{
    dirichlet_around, type_centroid, UserProfile, TYPE_CENTROIDS, TYPE_VOLUME_FACTOR,
    USER_TYPE_COUNT,
};
pub use scenario::{apply_scenario, CapacityProfile, ScenarioLog, ScenarioSpec};
pub use schedule::{
    is_leave_peak_hour, is_peak_hour, sample_class_slot, sample_diurnal_hour,
    sample_noise_duration, sample_weekly_schedule, ClassSlot, Meeting, CLASS_SLOTS,
    DIURNAL_WEIGHTS,
};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use s3_par::par_map;
use s3_stats::rng::{bernoulli, log_normal, poisson, truncated_normal, ZipfCache};
use s3_types::{
    ApId, BuildingId, Bytes, ControllerId, GroupId, TimeDelta, Timestamp, UserId,
    APP_CATEGORY_COUNT, SECS_PER_DAY,
};

use crate::record::zero_volumes;
use crate::{FlowRecord, SessionDemand};

/// Parameters of the synthetic campus.
#[derive(Debug, Clone, PartialEq)]
pub struct CampusConfig {
    /// Number of buildings; each building hosts one controller.
    pub buildings: usize,
    /// APs per building.
    pub aps_per_building: usize,
    /// Number of users.
    pub users: usize,
    /// Number of simulated days.
    pub days: u64,
    /// Fraction of users belonging to at least one social group.
    pub social_fraction: f64,
    /// Mean group size.
    pub group_size_mean: f64,
    /// Probability that a group member is drawn from the group's dominant
    /// latent type (Table I's diagonal dominance scales with this).
    pub type_homogeneity: f64,
    /// Probability a member attends any given meeting occurrence.
    pub attend_prob: f64,
    /// Std-dev of arrival jitter around a meeting start, seconds.
    pub arrive_jitter_sd: f64,
    /// Std-dev of departure jitter around a meeting end, seconds.
    pub depart_jitter_sd: f64,
    /// Mean independent sessions per user per weekday.
    pub noise_sessions_per_day: f64,
    /// Weekend multiplier on all activity.
    pub weekend_factor: f64,
    /// μ of the log-normal session volume (log-bytes at 1 h duration).
    pub volume_mu: f64,
    /// σ of the log-normal session volume.
    pub volume_sigma: f64,
    /// Dirichlet concentration of per-user base profiles around centroids.
    pub base_concentration: f64,
    /// Dirichlet concentration of weekly mixes around the base profile.
    pub weekly_concentration: f64,
    /// Dirichlet concentration of daily noise around the weekly mix.
    pub daily_concentration: f64,
    /// Meetings per group per week.
    pub meetings_per_week: usize,
}

impl CampusConfig {
    /// The default evaluation campus: 8 buildings × 8 APs, 2,000 users,
    /// 31 days — large enough for every experiment, fast enough for CI.
    pub fn campus() -> Self {
        CampusConfig {
            buildings: 8,
            aps_per_building: 8,
            users: 2_000,
            days: 31,
            social_fraction: 0.7,
            group_size_mean: 12.0,
            type_homogeneity: 0.8,
            attend_prob: 0.85,
            arrive_jitter_sd: 240.0,
            depart_jitter_sd: 150.0,
            noise_sessions_per_day: 1.2,
            weekend_factor: 0.35,
            volume_mu: (25e6f64).ln(),
            volume_sigma: 0.6,
            base_concentration: 150.0,
            weekly_concentration: 80.0,
            daily_concentration: 25.0,
            meetings_per_week: 3,
        }
    }

    /// A miniature campus for unit tests and doc examples: 2 buildings,
    /// ~40 users, 3 days.
    pub fn tiny() -> Self {
        CampusConfig {
            buildings: 2,
            aps_per_building: 3,
            users: 40,
            days: 3,
            ..CampusConfig::campus()
        }
    }

    /// The paper's reported scale: 22 buildings / 334 APs / 12,374 users /
    /// 90 days. Slow; used only with `--paper-scale`.
    pub fn paper_scale() -> Self {
        CampusConfig {
            buildings: 22,
            aps_per_building: 16, // 352 APs ≈ the paper's 334
            users: 12_374,
            days: 90,
            ..CampusConfig::campus()
        }
    }

    /// Total number of APs.
    pub fn total_aps(&self) -> usize {
        self.buildings * self.aps_per_building
    }

    /// The APs of `building`, as dense ids
    /// `[building · aps_per_building, (building+1) · aps_per_building)`.
    pub fn aps_of_building(&self, building: BuildingId) -> Vec<ApId> {
        let base = building.index() * self.aps_per_building;
        (base..base + self.aps_per_building)
            .map(|i| ApId::new(i as u32))
            .collect()
    }

    /// The controller of `building` (one per building).
    pub fn controller_of(&self, building: BuildingId) -> ControllerId {
        ControllerId::new(building.raw())
    }
}

/// A planted social group.
#[derive(Debug, Clone)]
pub struct Group {
    /// Group id.
    pub id: GroupId,
    /// Member users.
    pub members: Vec<UserId>,
    /// Building where the group meets.
    pub building: BuildingId,
    /// Dominant latent type of the group.
    pub dominant_type: usize,
    /// Weekly meeting schedule.
    pub meetings: Vec<Meeting>,
}

/// The planted structure behind a generated trace — for validation only.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// Latent type per user (indexed by `UserId::index`).
    pub user_types: Vec<usize>,
    /// Profile model per user.
    pub profiles: Vec<UserProfile>,
    /// Home building per user.
    pub home_building: Vec<BuildingId>,
    /// All groups.
    pub groups: Vec<Group>,
}

/// A generated campus trace: the demand stream plus its ground truth.
#[derive(Debug, Clone)]
pub struct Campus {
    /// The configuration that produced this campus.
    pub config: CampusConfig,
    /// All session demands, sorted by arrival time.
    pub demands: Vec<SessionDemand>,
    /// The planted structure.
    pub ground_truth: GroundTruth,
}

/// Domain tag for per-building group-session seed streams in
/// [`CampusGenerator::generate_par`].
const STREAM_GROUPS: u64 = 1;
/// Domain tag for per-user noise-session seed streams.
const STREAM_NOISE: u64 = 2;

/// Mixes `(seed, stream, index)` into an independent per-entity seed
/// (SplitMix64 finalizer). Every entity stream of the parallel generator is
/// a pure function of the master seed, so output never depends on which
/// thread ran which entity.
fn stream_seed(seed: u64, stream: u64, index: u64) -> u64 {
    let mut z = seed
        ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ index.wrapping_mul(0xD1B5_4A32_D192_ED03);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic generator: same `(config, seed)` → identical trace.
#[derive(Debug)]
pub struct CampusGenerator {
    config: CampusConfig,
    seed: u64,
    rng: StdRng,
}

impl CampusGenerator {
    /// Creates a generator for `config` seeded with `seed`.
    pub fn new(config: CampusConfig, seed: u64) -> Self {
        CampusGenerator {
            config,
            seed,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Generates the full campus trace sequentially, threading one RNG
    /// stream through population, group sessions and noise. The byte stream
    /// of this path is pinned (the fig2 golden depends on it); use
    /// [`generate_par`](Self::generate_par) for large scales.
    pub fn generate(mut self) -> Campus {
        let ground_truth = self.synthesize_population();
        let home_zipf = ZipfCache::new(self.config.buildings, 0.8);
        let mut demands = Vec::new();
        for group in &ground_truth.groups {
            emit_group_sessions(
                &self.config,
                &ground_truth,
                group,
                &mut self.rng,
                &mut demands,
            );
        }
        for user_index in 0..self.config.users {
            emit_noise_sessions(
                &self.config,
                &ground_truth,
                &home_zipf,
                user_index,
                &mut self.rng,
                &mut demands,
            );
        }
        demands.sort_by_key(|d| (d.arrive, d.user));
        Campus {
            config: self.config,
            demands,
            ground_truth,
        }
    }

    /// Generates the campus trace with session emission sharded over
    /// `threads` workers via `s3-par`.
    ///
    /// Population synthesis stays on the master RNG stream (identical
    /// ground truth to [`generate`](Self::generate)); session emission then
    /// draws from independent per-entity streams — one per building for
    /// group sessions, one per user for noise — each derived from the
    /// master seed by `stream_seed`. Shards are concatenated in entity
    /// order before the final stable sort, so the demand stream is a pure
    /// function of `(config, seed)`: any thread count, including 1,
    /// produces byte-identical output (pinned by test and by the CI
    /// generate-parity step). The stream *differs* from
    /// [`generate`](Self::generate)'s, which interleaves all entities on a
    /// single RNG.
    pub fn generate_par(mut self, threads: usize) -> Campus {
        let ground_truth = self.synthesize_population();
        let seed = self.seed;
        let cfg = self.config;
        let home_zipf = ZipfCache::new(cfg.buildings, 0.8);

        // One shard per building: a building's groups share a seed stream.
        let buildings: Vec<u32> = (0..cfg.buildings as u32).collect();
        let group_parts = par_map(&buildings, threads, |_, &b| {
            let mut rng = StdRng::seed_from_u64(stream_seed(seed, STREAM_GROUPS, u64::from(b)));
            let mut out = Vec::new();
            for group in &ground_truth.groups {
                if group.building.raw() == b {
                    emit_group_sessions(&cfg, &ground_truth, group, &mut rng, &mut out);
                }
            }
            out
        });

        // Noise: every user owns a stream, chunked only for spawn
        // granularity (chunk boundaries cannot affect output).
        const NOISE_CHUNK: usize = 2_048;
        let ranges: Vec<(usize, usize)> = (0..cfg.users)
            .step_by(NOISE_CHUNK.max(1))
            .map(|start| (start, (start + NOISE_CHUNK).min(cfg.users)))
            .collect();
        let noise_parts = par_map(&ranges, threads, |_, &(start, end)| {
            let mut out = Vec::new();
            for user_index in start..end {
                let mut rng =
                    StdRng::seed_from_u64(stream_seed(seed, STREAM_NOISE, user_index as u64));
                emit_noise_sessions(
                    &cfg,
                    &ground_truth,
                    &home_zipf,
                    user_index,
                    &mut rng,
                    &mut out,
                );
            }
            out
        });

        let total: usize = group_parts.iter().chain(&noise_parts).map(Vec::len).sum();
        let mut demands = Vec::with_capacity(total);
        for part in group_parts.into_iter().chain(noise_parts) {
            demands.extend(part);
        }
        demands.sort_by_key(|d| (d.arrive, d.user));
        Campus {
            config: cfg,
            demands,
            ground_truth,
        }
    }

    fn synthesize_population(&mut self) -> GroundTruth {
        let cfg = &self.config;
        let n = cfg.users;
        let mut user_types = Vec::with_capacity(n);
        let mut profiles = Vec::with_capacity(n);
        let mut home_building = Vec::with_capacity(n);
        let home_zipf = ZipfCache::new(cfg.buildings, 0.8);
        let group_zipf = ZipfCache::new(cfg.buildings, 0.6);
        for _ in 0..n {
            let t = self.rng.random_range(0..USER_TYPE_COUNT);
            user_types.push(t);
            let volume_scale = log_normal(&mut self.rng, 0.0, 0.3);
            profiles.push(UserProfile::synthesize(
                &mut self.rng,
                t,
                cfg.base_concentration,
                cfg.weekly_concentration,
                volume_scale,
            ));
            let b = home_zipf.sample(&mut self.rng);
            home_building.push(BuildingId::new(b as u32));
        }

        // Partition the social users into groups.
        let mut social_users: Vec<UserId> =
            (0..n as u32).map(UserId::new).filter(|_| true).collect();
        // Deterministic shuffle via index sampling.
        for i in (1..social_users.len()).rev() {
            let j = self.rng.random_range(0..=i);
            social_users.swap(i, j);
        }
        let social_count = (n as f64 * self.config.social_fraction) as usize;
        social_users.truncate(social_count);

        let mut users_by_type: Vec<Vec<UserId>> = vec![Vec::new(); USER_TYPE_COUNT];
        for &u in &social_users {
            users_by_type[user_types[u.index()]].push(u);
        }

        let mut groups = Vec::new();
        let mut unassigned: Vec<UserId> = social_users.clone();
        let mut group_id = 0u32;
        while !unassigned.is_empty() {
            let size = (poisson(&mut self.rng, self.config.group_size_mean) as usize).clamp(3, 40);
            let dominant_type = self.rng.random_range(0..USER_TYPE_COUNT);
            let mut members = Vec::with_capacity(size);
            let mut guard = 0;
            while members.len() < size && !unassigned.is_empty() && guard < size * 20 {
                guard += 1;
                // With probability `type_homogeneity` insist on the dominant
                // type; otherwise take anyone.
                let want_type = bernoulli(&mut self.rng, self.config.type_homogeneity);
                let pick = if want_type {
                    unassigned
                        .iter()
                        .position(|u| user_types[u.index()] == dominant_type)
                } else {
                    None
                };
                let idx = match pick {
                    Some(i) => i,
                    None => self.rng.random_range(0..unassigned.len()),
                };
                members.push(unassigned.swap_remove(idx));
            }
            if members.len() < 2 {
                // Too few to be a social group; the leftovers become
                // independent users.
                break;
            }
            let building = BuildingId::new(group_zipf.sample(&mut self.rng) as u32);
            let meetings = sample_weekly_schedule(&mut self.rng, self.config.meetings_per_week);
            groups.push(Group {
                id: GroupId::new(group_id),
                members,
                building,
                dominant_type,
                meetings,
            });
            group_id += 1;
        }

        GroundTruth {
            user_types,
            profiles,
            home_building,
            groups,
        }
    }
}

/// One session volume draw: log-normal, scaled by duration, user scale
/// and the type's heaviness factor, then split across realms by the
/// user's daily mix.
fn draw_volumes(
    cfg: &CampusConfig,
    rng: &mut StdRng,
    profile: &UserProfile,
    day: u64,
    duration: TimeDelta,
) -> [Bytes; APP_CATEGORY_COUNT] {
    let mix = profile.daily_mix(rng, day, cfg.daily_concentration);
    let base = log_normal(rng, cfg.volume_mu, cfg.volume_sigma);
    let hours = (duration.as_secs_f64() / 3600.0).max(0.05);
    let total = base * hours * profile.volume_scale * TYPE_VOLUME_FACTOR[profile.user_type];
    let mut volumes = zero_volumes();
    for (i, share) in mix.shares().iter().enumerate() {
        volumes[i] = Bytes::new((total * share) as u64);
    }
    volumes
}

/// Emits all meeting attendances of one group across the configured days,
/// drawing from `rng`. Shared by the sequential and parallel generators;
/// the draw order per group is part of the pinned byte stream.
fn emit_group_sessions(
    cfg: &CampusConfig,
    truth: &GroundTruth,
    group: &Group,
    rng: &mut StdRng,
    out: &mut Vec<SessionDemand>,
) {
    let controller = cfg.controller_of(group.building);
    for day in 0..cfg.days {
        let weekend = day % 7 >= 5;
        for meeting in &group.meetings {
            let Some((start, end)) = meeting.occurrence_on(day) else {
                continue;
            };
            for &user in &group.members {
                let mut attend = cfg.attend_prob;
                if weekend {
                    attend *= cfg.weekend_factor;
                }
                if !bernoulli(rng, attend) {
                    continue;
                }
                let arrive_jitter = truncated_normal(
                    rng,
                    0.0,
                    cfg.arrive_jitter_sd,
                    -3.0 * cfg.arrive_jitter_sd,
                    3.0 * cfg.arrive_jitter_sd,
                );
                let depart_jitter = truncated_normal(
                    rng,
                    0.0,
                    cfg.depart_jitter_sd,
                    -3.0 * cfg.depart_jitter_sd,
                    3.0 * cfg.depart_jitter_sd,
                );
                let arrive =
                    Timestamp::from_secs((start.as_secs() as f64 + arrive_jitter).max(0.0) as u64);
                let depart_secs = (end.as_secs() as f64 + depart_jitter).max(0.0) as u64;
                let depart = Timestamp::from_secs(depart_secs.max(arrive.as_secs() + 60));
                let duration = depart.saturating_sub(arrive);
                let profile = &truth.profiles[user.index()];
                let volume_by_app = draw_volumes(cfg, rng, profile, day, duration);
                out.push(SessionDemand {
                    user,
                    building: group.building,
                    controller,
                    arrive,
                    depart,
                    volume_by_app,
                });
            }
        }
    }
}

/// Emits all independent diurnal sessions of one user across the configured
/// days, drawing from `rng`. Shared by the sequential and parallel
/// generators; the draw order per user is part of the pinned byte stream.
fn emit_noise_sessions(
    cfg: &CampusConfig,
    truth: &GroundTruth,
    home_zipf: &ZipfCache,
    user_index: usize,
    rng: &mut StdRng,
    out: &mut Vec<SessionDemand>,
) {
    let user = UserId::new(user_index as u32);
    let profile = &truth.profiles[user_index];
    for day in 0..cfg.days {
        let weekend = day % 7 >= 5;
        let mut rate = cfg.noise_sessions_per_day;
        if weekend {
            rate *= cfg.weekend_factor;
        }
        let sessions = poisson(rng, rate);
        for _ in 0..sessions {
            let hour = sample_diurnal_hour(rng);
            let offset = rng.random_range(0..3_600u64);
            let arrive = Timestamp::from_secs(day * SECS_PER_DAY + hour * 3_600 + offset);
            let duration = sample_noise_duration(rng);
            let depart = arrive + duration;
            // 70 % home building, otherwise a popularity-weighted one.
            let building = if bernoulli(rng, 0.7) {
                truth.home_building[user_index]
            } else {
                BuildingId::new(home_zipf.sample(rng) as u32)
            };
            let volume_by_app = draw_volumes(cfg, rng, profile, day, duration);
            out.push(SessionDemand {
                user,
                building,
                controller: cfg.controller_of(building),
                arrive,
                depart,
                volume_by_app,
            });
        }
    }
}

/// Expands a session demand into synthetic router flows on the canonical
/// port of each realm (splitting each realm's volume into 1–4 flows), with
/// a small share of unclassifiable traffic on ephemeral ports.
pub fn generate_flows(demand: &SessionDemand, rng: &mut StdRng) -> Vec<FlowRecord> {
    let mut flows = Vec::new();
    for (i, &volume) in demand.volume_by_app.iter().enumerate() {
        if volume.is_zero() {
            continue;
        }
        let category = s3_types::AppCategory::from_index(i).expect("valid index");
        let (protocol, port) = crate::classify::canonical_port(category);
        let pieces = rng.random_range(1..=4u32);
        let share = volume.as_u64() / pieces as u64;
        for p in 0..pieces {
            let bytes = if p == pieces - 1 {
                volume.as_u64() - share * (pieces as u64 - 1)
            } else {
                share
            };
            flows.push(FlowRecord {
                user: demand.user,
                start: demand.arrive + TimeDelta::secs(p as u64 * 30),
                protocol,
                server_port: port,
                bytes: Bytes::new(bytes),
            });
        }
    }
    // ~2 % of volume on an unknown ephemeral port (the paper's long tail).
    if bernoulli(rng, 0.5) {
        let tail = demand.total_volume().as_u64() / 50;
        if tail > 0 {
            flows.push(FlowRecord {
                user: demand.user,
                start: demand.arrive,
                protocol: crate::TransportProtocol::Tcp,
                server_port: rng.random_range(49_152..65_535),
                bytes: Bytes::new(tail),
            });
        }
    }
    flows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::aggregate_flows;

    fn tiny_campus(seed: u64) -> Campus {
        CampusGenerator::new(CampusConfig::tiny(), seed).generate()
    }

    #[test]
    fn generation_is_deterministic() {
        let a = tiny_campus(7);
        let b = tiny_campus(7);
        assert_eq!(a.demands, b.demands);
        let c = tiny_campus(8);
        assert_ne!(a.demands, c.demands);
    }

    #[test]
    fn parallel_generation_is_thread_invariant() {
        let t1 = CampusGenerator::new(CampusConfig::tiny(), 7).generate_par(1);
        let t4 = CampusGenerator::new(CampusConfig::tiny(), 7).generate_par(4);
        assert_eq!(t1.demands, t4.demands);
        assert!(!t1.demands.is_empty());
        for w in t1.demands.windows(2) {
            assert!(w[0].arrive <= w[1].arrive);
        }
        // Population synthesis is shared with the sequential path, so the
        // planted ground truth is identical even though the session streams
        // differ.
        let seq = tiny_campus(7);
        assert_eq!(t1.ground_truth.user_types, seq.ground_truth.user_types);
        assert_eq!(
            t1.ground_truth.home_building,
            seq.ground_truth.home_building
        );
        assert_eq!(t1.ground_truth.groups.len(), seq.ground_truth.groups.len());
    }

    #[test]
    fn demands_are_sorted_and_well_formed() {
        let campus = tiny_campus(1);
        assert!(!campus.demands.is_empty());
        for w in campus.demands.windows(2) {
            assert!(w[0].arrive <= w[1].arrive);
        }
        for d in &campus.demands {
            assert!(d.depart > d.arrive, "session must have positive length");
            assert!(d.building.index() < campus.config.buildings);
            assert_eq!(d.controller, campus.config.controller_of(d.building));
            assert!(d.arrive.day() < campus.config.days + 1);
        }
    }

    #[test]
    fn every_group_member_shares_building_sessions() {
        let campus = tiny_campus(2);
        // At least one group must have produced co-located sessions.
        let group = campus
            .ground_truth
            .groups
            .iter()
            .find(|g| g.members.len() >= 3)
            .expect("tiny campus still has groups");
        let member_sessions: Vec<&SessionDemand> = campus
            .demands
            .iter()
            .filter(|d| group.members.contains(&d.user) && d.building == group.building)
            .collect();
        assert!(
            !member_sessions.is_empty(),
            "group {} produced no sessions in its building",
            group.id
        );
    }

    #[test]
    fn group_departures_cluster_in_time() {
        let campus = CampusGenerator::new(
            CampusConfig {
                users: 200,
                days: 7,
                ..CampusConfig::tiny()
            },
            3,
        )
        .generate();
        let group = campus
            .ground_truth
            .groups
            .iter()
            .max_by_key(|g| g.members.len())
            .expect("groups exist");
        let meeting = group.meetings[0];
        // Find the first weekday occurrence.
        let day = (0..7)
            .find(|&d| meeting.occurrence_on(d).is_some())
            .unwrap();
        let (_, end) = meeting.occurrence_on(day).unwrap();
        let departures: Vec<u64> = campus
            .demands
            .iter()
            .filter(|d| {
                group.members.contains(&d.user)
                    && d.building == group.building
                    && d.depart.abs_diff(end) <= TimeDelta::minutes(10)
            })
            .map(|d| d.depart.as_secs())
            .collect();
        assert!(
            departures.len() >= 2,
            "expected clustered departures near meeting end, got {departures:?}"
        );
    }

    #[test]
    fn ground_truth_covers_population() {
        let campus = tiny_campus(4);
        let cfg = &campus.config;
        assert_eq!(campus.ground_truth.user_types.len(), cfg.users);
        assert_eq!(campus.ground_truth.profiles.len(), cfg.users);
        assert_eq!(campus.ground_truth.home_building.len(), cfg.users);
        assert!(campus
            .ground_truth
            .user_types
            .iter()
            .all(|&t| t < USER_TYPE_COUNT));
        for g in &campus.ground_truth.groups {
            assert!(g.members.len() >= 2);
            assert!(g.building.index() < cfg.buildings);
            assert!(!g.meetings.is_empty());
        }
    }

    #[test]
    fn groups_are_mostly_type_homogeneous() {
        let campus = CampusGenerator::new(
            CampusConfig {
                users: 600,
                ..CampusConfig::tiny()
            },
            5,
        )
        .generate();
        let truth = &campus.ground_truth;
        let mut dominant_hits = 0usize;
        let mut total = 0usize;
        for g in &truth.groups {
            for &m in &g.members {
                total += 1;
                if truth.user_types[m.index()] == g.dominant_type {
                    dominant_hits += 1;
                }
            }
        }
        let ratio = dominant_hits as f64 / total as f64;
        assert!(ratio > 0.55, "homogeneity too low: {ratio}");
    }

    #[test]
    fn config_topology_helpers() {
        let cfg = CampusConfig::tiny();
        assert_eq!(cfg.total_aps(), 6);
        let aps = cfg.aps_of_building(BuildingId::new(1));
        assert_eq!(aps, vec![ApId::new(3), ApId::new(4), ApId::new(5)]);
        assert_eq!(cfg.controller_of(BuildingId::new(1)), ControllerId::new(1));
    }

    #[test]
    fn paper_scale_matches_reported_numbers() {
        let cfg = CampusConfig::paper_scale();
        assert_eq!(cfg.buildings, 22);
        assert_eq!(cfg.users, 12_374);
        assert_eq!(cfg.days, 90);
        assert!(cfg.total_aps() >= 334);
    }

    #[test]
    fn flows_classify_back_to_their_realms() {
        let campus = tiny_campus(6);
        let demand = campus
            .demands
            .iter()
            .find(|d| !d.total_volume().is_zero())
            .expect("some session has traffic");
        let mut rng = StdRng::seed_from_u64(9);
        let flows = generate_flows(demand, &mut rng);
        assert!(!flows.is_empty());
        let (volumes, unclassified) = aggregate_flows(&flows);
        for (i, v) in volumes.iter().enumerate() {
            assert_eq!(
                v.as_u64(),
                demand.volume_by_app[i].as_u64(),
                "realm {i} volume mismatch"
            );
        }
        // Tail traffic is small relative to the session.
        assert!(unclassified.as_u64() <= demand.total_volume().as_u64() / 40);
    }

    #[test]
    fn diurnal_structure_shows_in_arrivals() {
        let campus = CampusGenerator::new(
            CampusConfig {
                users: 400,
                days: 7,
                social_fraction: 0.0, // noise only: pure diurnal signal
                ..CampusConfig::tiny()
            },
            11,
        )
        .generate();
        let mut by_hour = [0u32; 24];
        for d in &campus.demands {
            by_hour[d.arrive.hour_of_day() as usize] += 1;
        }
        assert!(by_hour[10] > by_hour[3] * 3, "by_hour: {by_hour:?}");
    }
}
