//! Diurnal load shape and group activity schedules.
//!
//! Two temporal structures drive the paper's findings:
//!
//! * the campus **diurnal curve** — network load peaks 10:00–11:00 and
//!   15:00–16:00 (the paper's "peak hours");
//! * **class-slot schedules** — group activities end together at slot
//!   boundaries, producing the leave-peaks (12:00–13:00, ~17:00,
//!   21:00–22:00) against which S³ shines in Fig. 12.

use rand::rngs::StdRng;
use rand::RngExt;

use s3_types::{TimeDelta, Timestamp, SECS_PER_HOUR};

/// Relative arrival intensity per hour of day for independent ("noise")
/// sessions. Peaks at 10:00 and 15:00 match the paper's peak hours.
pub const DIURNAL_WEIGHTS: [f64; 24] = [
    0.15, 0.10, 0.08, 0.08, 0.08, 0.15, // 00-05: night
    0.50, 1.20, 2.20, 3.00, 3.60, 3.00, // 06-11: morning ramp, 10h peak
    2.00, 2.40, 2.90, 3.60, 3.00, 2.20, // 12-17: lunch dip, 15h peak
    1.90, 2.50, 2.80, 2.40, 1.40, 0.60, // 18-23: evening
];

/// The paper's peak hours: 10:00–11:00 and 15:00–16:00.
pub fn is_peak_hour(hour: u64) -> bool {
    hour == 10 || hour == 15
}

/// Hours with pronounced group departures in the SJTU trace (12:00–13:00,
/// 16:00–17:50, 21:00–22:00); used by Fig. 12's peak-leave gain analysis.
pub fn is_leave_peak_hour(hour: u64) -> bool {
    hour == 12 || hour == 16 || hour == 17 || hour == 21
}

/// Samples an hour of day from the diurnal distribution.
pub fn sample_diurnal_hour(rng: &mut StdRng) -> u64 {
    let total: f64 = DIURNAL_WEIGHTS.iter().sum();
    let mut target = rng.random::<f64>() * total;
    for (hour, &w) in DIURNAL_WEIGHTS.iter().enumerate() {
        if target < w {
            return hour as u64;
        }
        target -= w;
    }
    23
}

/// A recurring class slot: `[start_hour, end_hour)` on a weekday.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassSlot {
    /// Start hour of day.
    pub start_hour: u64,
    /// End hour of day (exclusive).
    pub end_hour: u64,
}

/// The campus timetable: class slots with selection weights. Heavier
/// weights on the slots ending at 12:00, 17:00 and 22:00 reproduce the
/// trace's leave-peaks.
pub const CLASS_SLOTS: [(ClassSlot, f64); 6] = [
    (
        ClassSlot {
            start_hour: 8,
            end_hour: 10,
        },
        1.0,
    ),
    (
        ClassSlot {
            start_hour: 10,
            end_hour: 12,
        },
        3.0,
    ),
    (
        ClassSlot {
            start_hour: 13,
            end_hour: 15,
        },
        1.0,
    ),
    (
        ClassSlot {
            start_hour: 15,
            end_hour: 17,
        },
        3.0,
    ),
    (
        ClassSlot {
            start_hour: 19,
            end_hour: 21,
        },
        1.0,
    ),
    (
        ClassSlot {
            start_hour: 20,
            end_hour: 22,
        },
        2.0,
    ),
];

/// Samples a class slot from the weighted timetable.
pub fn sample_class_slot(rng: &mut StdRng) -> ClassSlot {
    let total: f64 = CLASS_SLOTS.iter().map(|&(_, w)| w).sum();
    let mut target = rng.random::<f64>() * total;
    for &(slot, w) in &CLASS_SLOTS {
        if target < w {
            return slot;
        }
        target -= w;
    }
    CLASS_SLOTS[CLASS_SLOTS.len() - 1].0
}

/// One recurring meeting of a group: a slot on a day-of-week.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Meeting {
    /// Day of week, `0..7` (0 = trace day 0's weekday; 5 and 6 are the
    /// weekend with reduced activity).
    pub day_of_week: u64,
    /// The class slot.
    pub slot: ClassSlot,
}

impl Meeting {
    /// Concrete `[start, end)` of this meeting on trace day `day`, or
    /// `None` when `day` is not this meeting's weekday.
    pub fn occurrence_on(&self, day: u64) -> Option<(Timestamp, Timestamp)> {
        if day % 7 != self.day_of_week {
            return None;
        }
        let start = Timestamp::from_secs(
            day * s3_types::SECS_PER_DAY + self.slot.start_hour * SECS_PER_HOUR,
        );
        let end =
            Timestamp::from_secs(day * s3_types::SECS_PER_DAY + self.slot.end_hour * SECS_PER_HOUR);
        Some((start, end))
    }
}

/// Draws a weekly schedule of `count` meetings, weekdays only, without
/// duplicate (weekday, slot) pairs.
pub fn sample_weekly_schedule(rng: &mut StdRng, count: usize) -> Vec<Meeting> {
    let mut meetings: Vec<Meeting> = Vec::with_capacity(count);
    let mut guard = 0;
    while meetings.len() < count && guard < 200 {
        guard += 1;
        let meeting = Meeting {
            day_of_week: rng.random_range(0..5),
            slot: sample_class_slot(rng),
        };
        if !meetings
            .iter()
            .any(|m| m.day_of_week == meeting.day_of_week && m.slot == meeting.slot)
        {
            meetings.push(meeting);
        }
    }
    meetings
}

/// Session duration sampler for independent sessions: log-normal with a
/// median of ~35 minutes, clamped to `[3 min, 6 h]`.
pub fn sample_noise_duration(rng: &mut StdRng) -> TimeDelta {
    let secs = s3_stats::rng::log_normal(rng, (35.0f64 * 60.0).ln(), 0.8);
    TimeDelta::secs(secs.clamp(180.0, 6.0 * 3600.0) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn diurnal_peaks_where_the_paper_says() {
        let max = DIURNAL_WEIGHTS
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(DIURNAL_WEIGHTS[10], max);
        assert_eq!(DIURNAL_WEIGHTS[15], max);
        assert!(is_peak_hour(10) && is_peak_hour(15));
        assert!(!is_peak_hour(3));
        assert!(is_leave_peak_hour(12) && is_leave_peak_hour(21));
        assert!(!is_leave_peak_hour(10));
    }

    #[test]
    fn diurnal_sampling_matches_weights() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0u32; 24];
        for _ in 0..100_000 {
            counts[sample_diurnal_hour(&mut rng) as usize] += 1;
        }
        // 10:00 must be sampled far more than 03:00.
        assert!(counts[10] > counts[3] * 10);
        // And roughly as often as 15:00.
        let ratio = counts[10] as f64 / counts[15] as f64;
        assert!((0.9..1.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn class_slots_are_well_formed() {
        for &(slot, w) in &CLASS_SLOTS {
            assert!(slot.start_hour < slot.end_hour);
            assert!(slot.end_hour <= 24);
            assert!(w > 0.0);
        }
    }

    #[test]
    fn meeting_occurrence_respects_weekday() {
        let m = Meeting {
            day_of_week: 2,
            slot: ClassSlot {
                start_hour: 10,
                end_hour: 12,
            },
        };
        assert!(m.occurrence_on(0).is_none());
        let (start, end) = m.occurrence_on(2).unwrap();
        assert_eq!(start.day(), 2);
        assert_eq!(start.hour_of_day(), 10);
        assert_eq!(end.hour_of_day(), 12);
        assert!(m.occurrence_on(9).is_some(), "next week same weekday");
    }

    #[test]
    fn weekly_schedule_has_no_duplicates_and_weekdays_only() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let schedule = sample_weekly_schedule(&mut rng, 3);
            assert_eq!(schedule.len(), 3);
            for m in &schedule {
                assert!(m.day_of_week < 5);
            }
            for (i, a) in schedule.iter().enumerate() {
                for b in &schedule[i + 1..] {
                    assert!(!(a.day_of_week == b.day_of_week && a.slot == b.slot));
                }
            }
        }
    }

    #[test]
    fn noise_durations_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let d = sample_noise_duration(&mut rng);
            assert!(d.as_secs() >= 180 && d.as_secs() <= 6 * 3600);
        }
    }
}
