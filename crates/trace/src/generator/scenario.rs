//! Adversarial scenario transforms over generated demand streams.
//!
//! The fault grammar ([`super::faults`]) corrupts CSV *text* to stress the
//! ingestion layer; this module stresses the *policies*: it reshapes a
//! clean demand stream into the adversarial load patterns on which
//! AP-selection strategies actually disagree — benign campus days look
//! the same under almost any sane policy. Like the fault injector, every
//! transform is deterministic: the same demands, spec and seed always
//! yield the same scenario (`s3wlan generate --scenario <spec>`).
//!
//! Spec grammar (comma-separated, see `docs/STRATEGIES.md`):
//!
//! ```text
//! surge=N:DAY:HOUR   flash crowd: N users converge on the day's hottest
//!                    building in the hour starting HOUR
//! outage=B:DAY:HOURS rolling outage: B buildings go dark back-to-back for
//!                    HOURS each from 08:00; their arrivals displace to the
//!                    next building
//! roam=N             N users' longest sessions split across two buildings
//! caps=uniform|tiered heterogeneous AP capacities (150/100/50 Mb/s tiers
//!                    by AP id; advisory — consumed at topology build)
//! ```
//!
//! Preset names expand to canonical specs and may be mixed with grammar
//! elements: `benign`, `flash-crowd`, `rolling-outage`, `hetero-caps`,
//! `roaming`. Presets are resolved against the trace's day span, so
//! [`ScenarioSpec::parse`] takes the configured number of days.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use s3_obs::{Desc, Stability, Unit};
use s3_types::{BitsPerSec, BuildingId, TimeDelta, Timestamp};

use super::CampusConfig;
use crate::record::SessionDemand;

// Scenario metrics (documented in docs/METRICS.md).
static SCENARIO_SURGED: Desc = Desc {
    name: "trace.scenario.surged",
    help: "Flash-crowd sessions added to generated demand streams",
    unit: Unit::Count,
    stability: Stability::Stable,
};
static SCENARIO_DISPLACED: Desc = Desc {
    name: "trace.scenario.displaced",
    help: "Sessions displaced to a neighbour building by scenario outages",
    unit: Unit::Count,
    stability: Stability::Stable,
};
static SCENARIO_ROAMED: Desc = Desc {
    name: "trace.scenario.roamed",
    help: "Sessions split across buildings by scenario roaming",
    unit: Unit::Count,
    stability: Stability::Stable,
};

/// Per-AP capacity profile of a scenario.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum CapacityProfile {
    /// Every AP keeps the topology default.
    #[default]
    Uniform,
    /// Three capacity tiers — 150, 100 and 50 Mb/s — assigned round-robin
    /// by dense AP id, so tiers vary *within* every controller domain and
    /// capacity-aware strategies face genuinely unequal candidates.
    Tiered,
}

impl CapacityProfile {
    /// The AP capacity override for the AP with dense index `ap_index`, or
    /// `None` to keep the topology default. Advisory: demand transforms
    /// never read it; the consumer applies it when building the
    /// `s3_wlan`-style topology.
    pub fn capacity_of(&self, ap_index: usize) -> Option<BitsPerSec> {
        match self {
            CapacityProfile::Uniform => None,
            CapacityProfile::Tiered => {
                const TIERS_MBPS: [f64; 3] = [150.0, 100.0, 50.0];
                Some(BitsPerSec::mbps(TIERS_MBPS[ap_index % 3]))
            }
        }
    }
}

/// What to apply, parsed from the `--scenario` spec string.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScenarioSpec {
    /// Users pulled into the flash crowd.
    pub surge_users: usize,
    /// Day of the flash crowd (clamped to the trace's last day).
    pub surge_day: u64,
    /// Hour of day the flash crowd starts.
    pub surge_hour: u64,
    /// Buildings taken dark by the rolling outage.
    pub outage_buildings: usize,
    /// Day of the rolling outage (clamped to the trace's last day).
    pub outage_day: u64,
    /// Hours each building stays dark (windows are back-to-back).
    pub outage_hours: u64,
    /// Users whose longest session splits across two buildings.
    pub roam_users: usize,
    /// AP capacity profile.
    pub capacity: CapacityProfile,
}

impl ScenarioSpec {
    /// Parses the `--scenario` grammar (see the module docs). `days` is
    /// the trace's configured span, used to anchor presets near the end of
    /// the trace (where evaluation windows live).
    ///
    /// # Errors
    ///
    /// A human-readable message naming the offending element.
    pub fn parse(spec: &str, days: u64) -> Result<ScenarioSpec, String> {
        let late_day = days.saturating_sub(2);
        let mut out = ScenarioSpec::default();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = match part.split_once('=') {
                Some((k, v)) => (k.trim(), Some(v.trim())),
                None => (part, None),
            };
            let count = |v: Option<&str>| -> Result<usize, String> {
                v.ok_or_else(|| format!("scenario {key:?} needs =N"))?
                    .parse::<usize>()
                    .map_err(|e| format!("bad count in scenario element {part:?}: {e}"))
            };
            let triple = |v: Option<&str>| -> Result<(usize, u64, u64), String> {
                let v = v.ok_or_else(|| format!("scenario {key:?} needs =N:DAY:HOURS"))?;
                let mut it = v.splitn(3, ':');
                let err = || format!("scenario element {part:?} needs N:DAY:HOURS");
                let n = it
                    .next()
                    .ok_or_else(err)?
                    .parse::<usize>()
                    .map_err(|e| format!("bad count in scenario element {part:?}: {e}"))?;
                let day = it
                    .next()
                    .ok_or_else(err)?
                    .parse::<u64>()
                    .map_err(|e| format!("bad day in scenario element {part:?}: {e}"))?;
                let hours = it
                    .next()
                    .ok_or_else(err)?
                    .parse::<u64>()
                    .map_err(|e| format!("bad hours in scenario element {part:?}: {e}"))?;
                Ok((n, day, hours))
            };
            let flag = |v: Option<&str>| -> Result<(), String> {
                if v.is_some() {
                    return Err(format!("scenario preset {key:?} takes no value"));
                }
                Ok(())
            };
            match key {
                "surge" => (out.surge_users, out.surge_day, out.surge_hour) = triple(value)?,
                "outage" => {
                    (out.outage_buildings, out.outage_day, out.outage_hours) = triple(value)?
                }
                "roam" => out.roam_users = count(value)?,
                "caps" => {
                    out.capacity = match value {
                        Some("uniform") => CapacityProfile::Uniform,
                        Some("tiered") => CapacityProfile::Tiered,
                        _ => {
                            return Err(format!(
                                "scenario element {part:?} needs caps=uniform|tiered"
                            ))
                        }
                    }
                }
                "benign" => flag(value)?,
                "flash-crowd" => {
                    flag(value)?;
                    (out.surge_users, out.surge_day, out.surge_hour) = (300, late_day, 9);
                }
                "rolling-outage" => {
                    flag(value)?;
                    (out.outage_buildings, out.outage_day, out.outage_hours) = (3, late_day, 2);
                }
                "hetero-caps" => {
                    flag(value)?;
                    out.capacity = CapacityProfile::Tiered;
                }
                "roaming" => {
                    flag(value)?;
                    out.roam_users = 200;
                }
                _ => {
                    return Err(format!(
                        "unknown scenario element {part:?} (known: surge, outage, roam, \
                         caps, benign, flash-crowd, rolling-outage, hetero-caps, roaming)"
                    ))
                }
            }
        }
        Ok(out)
    }

    /// True when the spec transforms nothing (capacity profiles are
    /// advisory and do not touch demands).
    pub fn is_empty(&self) -> bool {
        *self == ScenarioSpec::default()
    }
}

/// Exactly what one [`apply_scenario`] call did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScenarioLog {
    /// Flash-crowd sessions added.
    pub surged: u64,
    /// Sessions displaced to a neighbour building by outages.
    pub displaced: u64,
    /// Sessions split across buildings by roaming.
    pub roamed: u64,
}

impl ScenarioLog {
    /// Total demand-stream edits.
    pub fn total(&self) -> u64 {
        self.surged + self.displaced + self.roamed
    }

    /// One-line human summary for CLI output.
    pub fn summary(&self) -> String {
        format!(
            "scenario applied {} edits: surged {}, displaced {}, roamed {}",
            self.total(),
            self.surged,
            self.displaced,
            self.roamed
        )
    }
}

/// Distinct users of the stream, ascending — the deterministic sampling
/// pool for surge and roam picks.
fn distinct_users(demands: &[SessionDemand]) -> Vec<s3_types::UserId> {
    let mut users: Vec<_> = demands.iter().map(|d| d.user).collect();
    users.sort_unstable();
    users.dedup();
    users
}

/// Applies `spec` to a generated demand stream in place, re-sorting it by
/// `(arrive, user)` afterwards (the generator's canonical order). The
/// same demands, spec and seed always produce the same stream.
///
/// Transforms run in a fixed order — surge, outage, roam — each drawing
/// from one seeded RNG. Days beyond the stream's configured span clamp to
/// the last day, so presets stay meaningful on tiny configs.
pub fn apply_scenario(
    demands: &mut Vec<SessionDemand>,
    config: &CampusConfig,
    spec: &ScenarioSpec,
    seed: u64,
) -> ScenarioLog {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5CE2_A210);
    let mut log = ScenarioLog::default();
    let last_day = config.days.saturating_sub(1);

    // Flash crowd: N users converge on the hottest building of the day.
    if spec.surge_users > 0 {
        let day = spec.surge_day.min(last_day);
        let mut per_building = vec![0usize; config.buildings];
        for d in demands.iter() {
            if d.arrive.day() == day {
                per_building[d.building.index()] += 1;
            }
        }
        let hot = BuildingId::new(
            per_building
                .iter()
                .enumerate()
                .max_by_key(|&(i, &n)| (n, usize::MAX - i))
                .map(|(i, _)| i as u32)
                .unwrap_or(0),
        );
        let mut pool = distinct_users(demands);
        rng.shuffle(&mut pool);
        pool.truncate(spec.surge_users);
        let mut surged = Vec::with_capacity(pool.len());
        for user in pool {
            let template = demands
                .iter()
                .find(|d| d.user == user)
                .expect("user drawn from the stream");
            let arrive = Timestamp::from_secs(day * 86_400 + spec.surge_hour * 3_600)
                + TimeDelta::secs(rng.random_range(0..1_800));
            let duration = TimeDelta::secs(rng.random_range(1_800..5_400));
            surged.push(SessionDemand {
                user,
                building: hot,
                controller: config.controller_of(hot),
                arrive,
                depart: arrive + duration,
                volume_by_app: template.volume_by_app,
            });
        }
        log.surged = surged.len() as u64;
        demands.extend(surged);
    }

    // Rolling outage: buildings 0..B go dark back-to-back from 08:00;
    // their in-window arrivals walk next door.
    if spec.outage_buildings > 0 && config.buildings > 1 {
        let day = spec.outage_day.min(last_day);
        for k in 0..spec.outage_buildings {
            let dark = BuildingId::new((k % config.buildings) as u32);
            let refuge = BuildingId::new(((dark.index() + 1) % config.buildings) as u32);
            let from =
                Timestamp::from_secs(day * 86_400 + (8 + k as u64 * spec.outage_hours) * 3_600);
            let to = from + TimeDelta::hours(spec.outage_hours);
            for d in demands.iter_mut() {
                if d.building == dark && d.arrive >= from && d.arrive < to {
                    d.building = refuge;
                    d.controller = config.controller_of(refuge);
                    log.displaced += 1;
                }
            }
        }
    }

    // Roaming: a user's longest long session splits into two halves in
    // different buildings (volumes split evenly per app realm).
    if spec.roam_users > 0 && config.buildings > 1 {
        let mut pool = distinct_users(demands);
        rng.shuffle(&mut pool);
        pool.truncate(spec.roam_users);
        let mut halves = Vec::new();
        for user in pool {
            let Some(longest) = (0..demands.len())
                .filter(|&i| {
                    demands[i].user == user && demands[i].duration() >= TimeDelta::hours(2)
                })
                .max_by_key(|&i| (demands[i].duration().as_secs(), demands[i].arrive))
            else {
                continue;
            };
            let away = {
                let offset = rng.random_range(1..config.buildings);
                let here = demands[longest].building.index();
                BuildingId::new(((here + offset) % config.buildings) as u32)
            };
            let d = &mut demands[longest];
            let mid = d.arrive + TimeDelta::secs(d.duration().as_secs() / 2);
            let mut second = SessionDemand {
                user,
                building: away,
                controller: config.controller_of(away),
                arrive: mid,
                depart: d.depart,
                volume_by_app: d.volume_by_app,
            };
            for (stay, go) in d.volume_by_app.iter_mut().zip(&mut second.volume_by_app) {
                let half = s3_types::Bytes::new(stay.as_u64() / 2);
                *go = half;
                *stay = s3_types::Bytes::new(stay.as_u64() - half.as_u64());
            }
            d.depart = mid;
            halves.push(second);
            log.roamed += 1;
        }
        demands.extend(halves);
    }

    demands.sort_by_key(|d| (d.arrive, d.user));

    let registry = s3_obs::global();
    registry.counter(&SCENARIO_SURGED).add(log.surged);
    registry.counter(&SCENARIO_DISPLACED).add(log.displaced);
    registry.counter(&SCENARIO_ROAMED).add(log.roamed);
    log
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::CampusGenerator;

    fn tiny_demands(seed: u64) -> (CampusConfig, Vec<SessionDemand>) {
        let config = CampusConfig::tiny();
        let campus = CampusGenerator::new(config.clone(), seed).generate();
        (config, campus.demands)
    }

    #[test]
    fn parse_accepts_grammar_and_presets() {
        let spec = ScenarioSpec::parse("surge=50:2:9,caps=tiered,roam=10", 3).unwrap();
        assert_eq!(
            (spec.surge_users, spec.surge_day, spec.surge_hour),
            (50, 2, 9)
        );
        assert_eq!(spec.capacity, CapacityProfile::Tiered);
        assert_eq!(spec.roam_users, 10);

        let preset = ScenarioSpec::parse("flash-crowd", 31).unwrap();
        assert_eq!(
            (preset.surge_users, preset.surge_day, preset.surge_hour),
            (300, 29, 9)
        );
        assert!(ScenarioSpec::parse("benign", 31).unwrap().is_empty());
        assert_eq!(
            ScenarioSpec::parse("hetero-caps", 31).unwrap().capacity,
            CapacityProfile::Tiered
        );
    }

    #[test]
    fn parse_rejects_unknown_elements_with_known_list() {
        let err = ScenarioSpec::parse("tsunami=3", 31).err().unwrap();
        assert!(err.contains("unknown scenario element"), "{err}");
        assert!(err.contains("flash-crowd"), "{err}");
        assert!(ScenarioSpec::parse("surge=1:2", 31).is_err());
        assert!(ScenarioSpec::parse("caps=weird", 31).is_err());
        assert!(ScenarioSpec::parse("roaming=5", 31).is_err());
    }

    #[test]
    fn same_seed_same_scenario_different_seed_differs() {
        let spec = ScenarioSpec::parse("surge=20:1:9,roam=10", 3).unwrap();
        let (config, base) = tiny_demands(11);
        let mut a = base.clone();
        let mut b = base.clone();
        let mut c = base.clone();
        let log_a = apply_scenario(&mut a, &config, &spec, 5);
        let log_b = apply_scenario(&mut b, &config, &spec, 5);
        let _ = apply_scenario(&mut c, &config, &spec, 6);
        assert_eq!(log_a, log_b);
        assert_eq!(a, b, "same seed must reproduce the same stream");
        assert_ne!(a, c, "a different seed must reshuffle the scenario");
        assert!(log_a.surged > 0 && log_a.roamed > 0);
    }

    #[test]
    fn surge_concentrates_sessions_on_one_building() {
        let spec = ScenarioSpec::parse("surge=30:2:9", 3).unwrap();
        let (config, base) = tiny_demands(7);
        let mut demands = base.clone();
        let log = apply_scenario(&mut demands, &config, &spec, 9);
        assert_eq!(demands.len(), base.len() + log.surged as usize);
        let added: Vec<_> = demands
            .iter()
            .filter(|d| d.arrive.day() == 2 && d.arrive.hour_of_day() == 9)
            .collect();
        assert!(added.len() >= log.surged as usize);
        // Sorted invariant preserved.
        assert!(demands
            .windows(2)
            .all(|w| (w[0].arrive, w[0].user) <= (w[1].arrive, w[1].user)));
    }

    #[test]
    fn outage_moves_dark_building_arrivals_next_door() {
        let spec = ScenarioSpec::parse("outage=1:1:12", 3).unwrap();
        let (config, base) = tiny_demands(13);
        let mut demands = base.clone();
        let log = apply_scenario(&mut demands, &config, &spec, 3);
        assert!(log.displaced > 0, "a 12 h outage must catch arrivals");
        assert_eq!(demands.len(), base.len(), "outages displace, never drop");
        let from = Timestamp::from_secs(86_400 + 8 * 3_600);
        let to = from + TimeDelta::hours(12);
        assert!(
            demands
                .iter()
                .filter(|d| d.arrive >= from && d.arrive < to)
                .all(|d| d.building != BuildingId::new(0)),
            "no arrivals may remain in the dark building's window"
        );
    }

    #[test]
    fn roam_splits_sessions_and_conserves_volume() {
        let spec = ScenarioSpec::parse("roam=15", 3).unwrap();
        let (config, base) = tiny_demands(21);
        let mut demands = base.clone();
        let log = apply_scenario(&mut demands, &config, &spec, 4);
        assert!(log.roamed > 0);
        assert_eq!(demands.len(), base.len() + log.roamed as usize);
        let total = |ds: &[SessionDemand]| -> u64 {
            ds.iter()
                .flat_map(|d| d.volume_by_app.iter())
                .map(|v| v.as_u64())
                .sum()
        };
        assert_eq!(
            total(&demands),
            total(&base),
            "roaming must conserve volume"
        );
    }

    #[test]
    fn tiered_caps_cycle_three_levels() {
        let caps = CapacityProfile::Tiered;
        assert_eq!(caps.capacity_of(0), Some(BitsPerSec::mbps(150.0)));
        assert_eq!(caps.capacity_of(2), Some(BitsPerSec::mbps(50.0)));
        assert_eq!(caps.capacity_of(3), Some(BitsPerSec::mbps(150.0)));
        assert_eq!(CapacityProfile::Uniform.capacity_of(0), None);
    }
}
