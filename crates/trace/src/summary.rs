//! Descriptive statistics over a session log — the "Table 0" every
//! measurement paper opens with, and the backbone of `s3wlan analyze`.

use s3_types::{AppCategory, Bytes, TimeDelta, APP_CATEGORY_COUNT};

use crate::TraceStore;

/// Descriptive summary of a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Number of session records.
    pub sessions: usize,
    /// Distinct users.
    pub users: usize,
    /// Distinct APs (across all controllers).
    pub aps: usize,
    /// Distinct controllers.
    pub controllers: usize,
    /// First and last day touched (inclusive).
    pub day_range: Option<(u64, u64)>,
    /// Total served volume.
    pub total_volume: Bytes,
    /// Served volume per application realm.
    pub volume_by_app: [Bytes; APP_CATEGORY_COUNT],
    /// Session duration percentiles `(p10, p50, p90)`.
    pub duration_percentiles: (TimeDelta, TimeDelta, TimeDelta),
    /// Mean sessions per user per active day.
    pub sessions_per_user_day: f64,
}

impl TraceSummary {
    /// Summarizes a store. Empty stores produce a zeroed summary.
    pub fn of(store: &TraceStore) -> TraceSummary {
        let mut aps = std::collections::HashSet::new();
        let mut total_volume = Bytes::ZERO;
        let mut volume_by_app = [Bytes::ZERO; APP_CATEGORY_COUNT];
        let mut durations: Vec<u64> = Vec::with_capacity(store.len());
        for r in store.records() {
            aps.insert(r.ap);
            total_volume += r.total_volume();
            for (slot, v) in volume_by_app.iter_mut().zip(&r.volume_by_app) {
                *slot += *v;
            }
            durations.push(r.duration().as_secs());
        }
        durations.sort_unstable();
        let pct = |q: f64| -> TimeDelta {
            if durations.is_empty() {
                TimeDelta::ZERO
            } else {
                let idx = ((durations.len() - 1) as f64 * q).round() as usize;
                TimeDelta::secs(durations[idx])
            }
        };
        let day_range = store.day_range();
        let days = day_range.map(|(a, b)| b - a + 1).unwrap_or(0);
        let users = store.users().len();
        let sessions_per_user_day = if users > 0 && days > 0 {
            store.len() as f64 / (users as f64 * days as f64)
        } else {
            0.0
        };
        TraceSummary {
            sessions: store.len(),
            users,
            aps: aps.len(),
            controllers: store.controllers().len(),
            day_range,
            total_volume,
            volume_by_app,
            duration_percentiles: (pct(0.1), pct(0.5), pct(0.9)),
            sessions_per_user_day,
        }
    }

    /// The realm carrying the most traffic, with its share of the total
    /// (`None` for an empty trace).
    pub fn dominant_realm(&self) -> Option<(AppCategory, f64)> {
        if self.total_volume.is_zero() {
            return None;
        }
        let (idx, volume) = self
            .volume_by_app
            .iter()
            .enumerate()
            .max_by_key(|&(_, v)| v.as_u64())?;
        Some((
            AppCategory::from_index(idx).expect("valid realm index"),
            volume.as_f64() / self.total_volume.as_f64(),
        ))
    }

    /// Renders a compact multi-line report.
    pub fn report(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "sessions: {} | users: {} | APs: {} | controllers: {}\n",
            self.sessions, self.users, self.aps, self.controllers
        ));
        if let Some((a, b)) = self.day_range {
            out.push_str(&format!("days: {a}..={b}\n"));
        }
        out.push_str(&format!(
            "traffic: {} total | {:.2} sessions/user/day\n",
            self.total_volume, self.sessions_per_user_day
        ));
        let (p10, p50, p90) = self.duration_percentiles;
        out.push_str(&format!(
            "session duration: p10 {}m | p50 {}m | p90 {}m\n",
            p10.as_secs() / 60,
            p50.as_secs() / 60,
            p90.as_secs() / 60
        ));
        for (i, v) in self.volume_by_app.iter().enumerate() {
            let c = AppCategory::from_index(i).expect("valid index");
            let share = if self.total_volume.is_zero() {
                0.0
            } else {
                v.as_f64() / self.total_volume.as_f64() * 100.0
            };
            out.push_str(&format!("  {c:<6} {v} ({share:.1}%)\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::concentrated_volumes;
    use crate::SessionRecord;
    use s3_types::{ApId, ControllerId, Timestamp, UserId};

    fn rec(user: u32, ap: u32, start: u64, dur: u64, cat: AppCategory, mb: u64) -> SessionRecord {
        SessionRecord {
            user: UserId::new(user),
            ap: ApId::new(ap),
            controller: ControllerId::new(ap / 4),
            connect: Timestamp::from_secs(start),
            disconnect: Timestamp::from_secs(start + dur),
            volume_by_app: concentrated_volumes(cat, Bytes::megabytes(mb)),
        }
    }

    #[test]
    fn summary_counts_everything() {
        let store = TraceStore::new(vec![
            rec(1, 0, 100, 600, AppCategory::Video, 10),
            rec(2, 1, 200, 1_200, AppCategory::Video, 20),
            rec(1, 4, 86_400, 1_800, AppCategory::Im, 5),
        ]);
        let s = TraceSummary::of(&store);
        assert_eq!(s.sessions, 3);
        assert_eq!(s.users, 2);
        assert_eq!(s.aps, 3);
        assert_eq!(s.controllers, 2);
        assert_eq!(s.day_range, Some((0, 1)));
        assert_eq!(s.total_volume, Bytes::megabytes(35));
        assert_eq!(
            s.volume_by_app[AppCategory::Video.index()],
            Bytes::megabytes(30)
        );
        let (p10, p50, p90) = s.duration_percentiles;
        assert_eq!(p10, TimeDelta::secs(600));
        assert_eq!(p50, TimeDelta::secs(1_200));
        assert_eq!(p90, TimeDelta::secs(1_800));
        // 3 sessions / (2 users * 2 days)
        assert!((s.sessions_per_user_day - 0.75).abs() < 1e-12);
    }

    #[test]
    fn dominant_realm_and_share() {
        let store = TraceStore::new(vec![
            rec(1, 0, 0, 600, AppCategory::P2p, 30),
            rec(2, 0, 0, 600, AppCategory::Im, 10),
        ]);
        let s = TraceSummary::of(&store);
        let (realm, share) = s.dominant_realm().unwrap();
        assert_eq!(realm, AppCategory::P2p);
        assert!((share - 0.75).abs() < 1e-9);
    }

    #[test]
    fn empty_store_summary() {
        let s = TraceSummary::of(&TraceStore::new(vec![]));
        assert_eq!(s.sessions, 0);
        assert_eq!(s.day_range, None);
        assert_eq!(s.dominant_realm(), None);
        assert_eq!(s.sessions_per_user_day, 0.0);
        assert_eq!(s.duration_percentiles.1, TimeDelta::ZERO);
        assert!(s.report().contains("sessions: 0"));
    }

    #[test]
    fn report_mentions_all_realms() {
        let store = TraceStore::new(vec![rec(1, 0, 0, 600, AppCategory::Email, 5)]);
        let report = TraceSummary::of(&store).report();
        for c in AppCategory::ALL {
            assert!(
                report.contains(c.label()),
                "missing {c} in report:\n{report}"
            );
        }
    }
}
