//! WLAN trace model for the S³ reproduction.
//!
//! The paper mines a three-month association log from SJTU (12,374 users,
//! 334 APs, 22 buildings). That trace is proprietary, so this crate supplies
//! both halves of the substitution documented in `DESIGN.md`:
//!
//! * the **record model** ([`SessionRecord`], [`SessionDemand`],
//!   [`FlowRecord`]) mirroring the fields the paper logs — hashed user id,
//!   connect/disconnect timestamps, serving AP, served volume, and
//!   flow-level port data for application classification;
//! * a **synthetic campus generator** ([`generator`]) that reproduces the
//!   structural properties the paper's analysis depends on: diurnal load
//!   with morning/afternoon peaks, social groups that arrive and leave
//!   together on class-like schedules, four latent application-profile
//!   archetypes, and a population of independent "noise" users;
//! * the **mining primitives** ([`events`]) that extract encounter and
//!   co-leaving events from any session log — real or synthetic;
//! * a [`TraceStore`] with the time/user/AP indexed queries the analysis
//!   and the S³ learner need, and a hand-rolled [`csv`] codec so traces can
//!   be persisted and inspected without extra dependencies.
//!
//! # Example
//!
//! ```
//! use s3_trace::generator::{CampusConfig, CampusGenerator};
//!
//! let config = CampusConfig::tiny(); // 2 buildings, ~40 users, 3 days
//! let campus = CampusGenerator::new(config, 42).generate();
//! assert!(!campus.demands.is_empty());
//! assert!(campus.demands.windows(2).all(|w| w[0].arrive <= w[1].arrive));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classify;
pub mod csv;
pub mod decision_log;
pub mod events;
pub mod generator;
pub mod ingest;
pub mod interner;
mod record;
mod store;
pub mod summary;

pub use record::{
    concentrated_volumes, zero_volumes, FlowRecord, SessionDemand, SessionRecord, TransportProtocol,
};
pub use store::TraceStore;
