//! Encounter and co-leaving event mining (Section III-D1).
//!
//! * An **encounter** is a pair of users holding sessions on the same AP
//!   whose presence intervals overlap for at least a dwell threshold.
//! * A **co-leaving** is a pair of users leaving the same AP within a short
//!   extraction window (the paper studies windows from 1 to 30 minutes and
//!   settles on 5 minutes for S³).
//!
//! Both extractors return per-pair counts; aggregating multiple common
//! events per pair is the paper's noise-suppression step against "fake"
//! social relationships.

use std::collections::HashMap;

use s3_obs::{Desc, HistogramDesc, Stability, Unit};
use s3_types::{ApId, TimeDelta, UserId};

use crate::{SessionRecord, TraceStore};

// Event-mining metrics (documented in docs/METRICS.md). Per-shard tallies
// are accumulated locally inside each worker closure and added to the
// counter once per AP group; each group is scanned by exactly one worker,
// so totals are identical for every thread count.
static SESSIONS_SHARDED: Desc = Desc {
    name: "trace.events.sessions_sharded",
    help: "Session records distributed into per-AP shards for event mining",
    unit: Unit::Count,
    stability: Stability::Stable,
};
static AP_SHARDS: Desc = Desc {
    name: "trace.events.ap_shards",
    help: "Per-AP shards built for event mining scans",
    unit: Unit::Count,
    stability: Stability::Stable,
};
static ENCOUNTER_PAIRS_SCANNED: Desc = Desc {
    name: "trace.events.encounter_pairs_scanned",
    help: "Session pairs examined by the encounter extractor",
    unit: Unit::Count,
    stability: Stability::Stable,
};
static ENCOUNTERS_FOUND: Desc = Desc {
    name: "trace.events.encounters_found",
    help: "Encounter events found (overlap at least the dwell threshold)",
    unit: Unit::Count,
    stability: Stability::Stable,
};
static COLEAVING_PAIRS_SCANNED: Desc = Desc {
    name: "trace.events.coleaving_pairs_scanned",
    help: "Departure pairs examined by the co-leaving extractor",
    unit: Unit::Count,
    stability: Stability::Stable,
};
static COLEAVINGS_FOUND: Desc = Desc {
    name: "trace.events.coleavings_found",
    help: "Co-leaving events found (departures within the extraction window)",
    unit: Unit::Count,
    stability: Stability::Stable,
};
static LEAVINGS_SCANNED: Desc = Desc {
    name: "trace.events.leavings_scanned",
    help: "Departures examined by the per-user leaving-statistics scan",
    unit: Unit::Count,
    stability: Stability::Stable,
};
static MINE_MICROS: HistogramDesc = HistogramDesc {
    name: "trace.events.mine_micros",
    help: "Wall-clock duration of each event-mining pass",
    unit: Unit::Micros,
    stability: Stability::Volatile,
    bounds: &[100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000],
};

/// Groups the store's records per AP, projecting each record with `project`,
/// and sorts both the groups (by [`ApId`]) and each group's entries. The
/// fully deterministic ordering makes the result a stable work list for
/// sharding across threads — every extractor below starts from this shape.
fn ap_groups<T, F>(store: &TraceStore, project: F) -> Vec<(ApId, Vec<T>)>
where
    T: Ord,
    F: Fn(&SessionRecord) -> T,
{
    let mut by_ap: HashMap<ApId, Vec<T>> = HashMap::new();
    for r in store.records() {
        by_ap.entry(r.ap).or_default().push(project(r));
    }
    let mut groups: Vec<(ApId, Vec<T>)> = by_ap.into_iter().collect();
    groups.sort_unstable_by_key(|&(ap, _)| ap);
    for (_, entries) in &mut groups {
        entries.sort_unstable();
    }
    let registry = s3_obs::global();
    registry.counter(&AP_SHARDS).add(groups.len() as u64);
    registry
        .counter(&SESSIONS_SHARDED)
        .add(groups.iter().map(|(_, e)| e.len() as u64).sum());
    groups
}

/// Merges per-shard pair-count maps. Saturating addition over `u32` is
/// commutative and associative, and each AP is processed by exactly one
/// shard, so the merged map is independent of shard count and merge order.
/// Saturation (instead of `+`) keeps a pathological trace — billions of
/// events on one pair — from wrapping in release or panicking in debug.
fn merge_pair_counts(shards: Vec<HashMap<UserPair, u32>>) -> HashMap<UserPair, u32> {
    let mut iter = shards.into_iter();
    let mut out = iter.next().unwrap_or_default();
    for shard in iter {
        for (pair, count) in shard {
            let slot = out.entry(pair).or_insert(0);
            *slot = slot.saturating_add(count);
        }
    }
    out
}

/// An unordered user pair, stored canonically (smaller id first).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UserPair(pub UserId, pub UserId);

impl UserPair {
    /// Builds the canonical pair; `None` when `a == b` (no self-pairs).
    pub fn new(a: UserId, b: UserId) -> Option<UserPair> {
        match a.cmp(&b) {
            std::cmp::Ordering::Less => Some(UserPair(a, b)),
            std::cmp::Ordering::Greater => Some(UserPair(b, a)),
            std::cmp::Ordering::Equal => None,
        }
    }

    /// True when `user` is one of the two members.
    pub fn contains(&self, user: UserId) -> bool {
        self.0 == user || self.1 == user
    }
}

/// Per-pair encounter counts over the whole store.
///
/// Two sessions on the same AP encounter when their overlap lasts at least
/// `min_overlap`. Multiple overlapping session pairs of the same user pair
/// each count (they are distinct common events).
///
/// Presence intervals are **half-open** `[connect, disconnect)`: sessions
/// that merely touch (`b.connect == a.disconnect`) share no instant and
/// never encounter, even at `min_overlap == 0`.
pub fn extract_encounters(store: &TraceStore, min_overlap: TimeDelta) -> HashMap<UserPair, u32> {
    extract_encounters_par(store, min_overlap, 1)
}

/// [`extract_encounters`] with the per-AP scans sharded over `threads`
/// workers. Each AP's pair scan is independent, so sharding the sorted group
/// list yields the same counts as the sequential pass for any thread count.
pub fn extract_encounters_par(
    store: &TraceStore,
    min_overlap: TimeDelta,
    threads: usize,
) -> HashMap<UserPair, u32> {
    let registry = s3_obs::global();
    let _span = registry.timer(&MINE_MICROS);
    let scanned = registry.counter(&ENCOUNTER_PAIRS_SCANNED);
    let found = registry.counter(&ENCOUNTERS_FOUND);
    // Session lists per AP are small relative to the whole trace, keeping
    // the per-AP near-quadratic pair scan cheap.
    let groups = ap_groups(store, |r| (r.connect, r.disconnect, r.user));
    let shards = s3_par::par_map(&groups, threads, |_, (_, sessions)| {
        let mut counts: HashMap<UserPair, u32> = HashMap::new();
        let mut pairs_scanned = 0u64;
        let mut events_found = 0u64;
        for (i, &(a_start, a_end, a_user)) in sessions.iter().enumerate() {
            for &(b_start, b_end, b_user) in &sessions[i + 1..] {
                if b_start >= a_end {
                    break; // sorted by start; no later session can overlap
                }
                pairs_scanned += 1;
                let overlap_start = a_start.max(b_start);
                let overlap_end = a_end.min(b_end);
                if overlap_end.saturating_sub(overlap_start) >= min_overlap {
                    if let Some(pair) = UserPair::new(a_user, b_user) {
                        let slot = counts.entry(pair).or_insert(0);
                        *slot = slot.saturating_add(1);
                        events_found += 1;
                    }
                }
            }
        }
        scanned.add(pairs_scanned);
        found.add(events_found);
        counts
    });
    merge_pair_counts(shards)
}

/// Per-pair co-leaving counts: both users disconnect from the same AP
/// within `window` of each other.
pub fn extract_coleavings(store: &TraceStore, window: TimeDelta) -> HashMap<UserPair, u32> {
    extract_coleavings_par(store, window, 1)
}

/// [`extract_coleavings`] with the per-AP scans sharded over `threads`
/// workers.
pub fn extract_coleavings_par(
    store: &TraceStore,
    window: TimeDelta,
    threads: usize,
) -> HashMap<UserPair, u32> {
    let registry = s3_obs::global();
    let _span = registry.timer(&MINE_MICROS);
    let scanned = registry.counter(&COLEAVING_PAIRS_SCANNED);
    let found = registry.counter(&COLEAVINGS_FOUND);
    let groups = ap_groups(store, |r| (r.disconnect, r.user));
    let shards = s3_par::par_map(&groups, threads, |_, (_, departures)| {
        let mut counts: HashMap<UserPair, u32> = HashMap::new();
        let mut pairs_scanned = 0u64;
        let mut events_found = 0u64;
        for (i, &(t_a, user_a)) in departures.iter().enumerate() {
            for &(t_b, user_b) in &departures[i + 1..] {
                if t_b.saturating_sub(t_a) > window {
                    break;
                }
                pairs_scanned += 1;
                if let Some(pair) = UserPair::new(user_a, user_b) {
                    let slot = counts.entry(pair).or_insert(0);
                    *slot = slot.saturating_add(1);
                    events_found += 1;
                }
            }
        }
        scanned.add(pairs_scanned);
        found.add(events_found);
        counts
    });
    merge_pair_counts(shards)
}

/// Per-user leaving statistics for Fig. 5: how many of a user's leavings
/// were co-leavings (another user left the same AP within `window`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LeavingStats {
    /// Total departures of the user.
    pub total: u32,
    /// Departures shared with at least one other user.
    pub co_leavings: u32,
}

impl LeavingStats {
    /// Fraction of leavings that were co-leavings (0 for users who never
    /// left — they contribute nothing to the CDF).
    pub fn co_leaving_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.co_leavings as f64 / self.total as f64
        }
    }
}

/// Computes [`LeavingStats`] for every user in the store.
pub fn leaving_stats(store: &TraceStore, window: TimeDelta) -> HashMap<UserId, LeavingStats> {
    leaving_stats_par(store, window, 1)
}

/// [`leaving_stats`] with the per-AP scans sharded over `threads` workers.
/// Per-user totals merge by `u32` addition, so the result is independent of
/// the thread count.
pub fn leaving_stats_par(
    store: &TraceStore,
    window: TimeDelta,
    threads: usize,
) -> HashMap<UserId, LeavingStats> {
    let registry = s3_obs::global();
    let _span = registry.timer(&MINE_MICROS);
    let leavings = registry.counter(&LEAVINGS_SCANNED);
    let groups = ap_groups(store, |r| (r.disconnect, r.user));
    let shards = s3_par::par_map(&groups, threads, |_, (_, departures)| {
        leavings.add(departures.len() as u64);
        let mut stats: HashMap<UserId, LeavingStats> = HashMap::new();
        for (i, &(t, user)) in departures.iter().enumerate() {
            let entry = stats.entry(user).or_default();
            entry.total = entry.total.saturating_add(1);
            // Shared with anyone within the window on either side?
            let mut shared = false;
            for &(t2, user2) in departures[i + 1..].iter() {
                if t2.saturating_sub(t) > window {
                    break;
                }
                if user2 != user {
                    shared = true;
                    break;
                }
            }
            if !shared {
                for &(t2, user2) in departures[..i].iter().rev() {
                    if t.saturating_sub(t2) > window {
                        break;
                    }
                    if user2 != user {
                        shared = true;
                        break;
                    }
                }
            }
            if shared {
                entry.co_leavings = entry.co_leavings.saturating_add(1);
            }
        }
        stats
    });
    let mut iter = shards.into_iter();
    let mut out = iter.next().unwrap_or_default();
    for shard in iter {
        for (user, s) in shard {
            let entry = out.entry(user).or_default();
            entry.total = entry.total.saturating_add(s.total);
            entry.co_leavings = entry.co_leavings.saturating_add(s.co_leavings);
        }
    }
    out
}

/// The conditional probability table `P(co-leave | encounter)` per pair —
/// the first term of the paper's social relation index δ. Pairs that never
/// encountered are absent (the δ formula falls back to the type matrix).
pub fn coleave_given_encounter(
    encounters: &HashMap<UserPair, u32>,
    coleavings: &HashMap<UserPair, u32>,
) -> HashMap<UserPair, f64> {
    let mut out = HashMap::with_capacity(encounters.len());
    for (&pair, &enc) in encounters {
        if enc == 0 {
            continue;
        }
        let co = coleavings.get(&pair).copied().unwrap_or(0);
        // A pair can in principle co-leave more often than it "encounters"
        // (short joint visits below the dwell threshold); clamp to 1.
        out.insert(pair, (co as f64 / enc as f64).min(1.0));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::concentrated_volumes;
    use crate::SessionRecord;
    use s3_types::{ApId, AppCategory, Bytes, ControllerId, Timestamp};

    fn rec(user: u32, ap: u32, connect: u64, disconnect: u64) -> SessionRecord {
        SessionRecord {
            user: UserId::new(user),
            ap: ApId::new(ap),
            controller: ControllerId::new(0),
            connect: Timestamp::from_secs(connect),
            disconnect: Timestamp::from_secs(disconnect),
            volume_by_app: concentrated_volumes(AppCategory::Im, Bytes::new(1000)),
        }
    }

    #[test]
    fn user_pair_canonical() {
        let p = UserPair::new(UserId::new(5), UserId::new(2)).unwrap();
        assert_eq!(p, UserPair(UserId::new(2), UserId::new(5)));
        assert!(p.contains(UserId::new(5)));
        assert!(!p.contains(UserId::new(3)));
        assert!(UserPair::new(UserId::new(1), UserId::new(1)).is_none());
    }

    #[test]
    fn encounters_require_overlap_threshold() {
        let store = TraceStore::new(vec![
            rec(1, 0, 0, 1000),
            rec(2, 0, 500, 2000), // 500 s overlap with user 1
            rec(3, 0, 990, 3000), // 10 s overlap with user 1
        ]);
        let enc = extract_encounters(&store, TimeDelta::secs(300));
        let p12 = UserPair::new(UserId::new(1), UserId::new(2)).unwrap();
        let p13 = UserPair::new(UserId::new(1), UserId::new(3)).unwrap();
        let p23 = UserPair::new(UserId::new(2), UserId::new(3)).unwrap();
        assert_eq!(enc.get(&p12), Some(&1));
        assert_eq!(enc.get(&p13), None, "10s overlap is below threshold");
        assert_eq!(enc.get(&p23), Some(&1), "1010s overlap counts");
    }

    #[test]
    fn touching_sessions_never_encounter_even_at_zero_overlap() {
        // Presence intervals are half-open [connect, disconnect): a session
        // starting exactly when another ends shares no instant with it.
        let store = TraceStore::new(vec![rec(1, 0, 0, 1000), rec(2, 0, 1000, 2000)]);
        let enc = extract_encounters(&store, TimeDelta::secs(0));
        assert!(enc.is_empty(), "touching intervals must not encounter");
        // One shared second does count at min_overlap == 0.
        let store = TraceStore::new(vec![rec(1, 0, 0, 1000), rec(2, 0, 999, 2000)]);
        let enc = extract_encounters(&store, TimeDelta::secs(0));
        let p = UserPair::new(UserId::new(1), UserId::new(2)).unwrap();
        assert_eq!(enc.get(&p), Some(&1));
    }

    #[test]
    fn pair_counts_saturate_instead_of_wrapping() {
        let p = UserPair::new(UserId::new(1), UserId::new(2)).unwrap();
        let mut a = HashMap::new();
        a.insert(p, u32::MAX - 1);
        let mut b = HashMap::new();
        b.insert(p, 5);
        let merged = merge_pair_counts(vec![a, b]);
        assert_eq!(merged[&p], u32::MAX, "merge must clamp, not wrap");
    }

    #[test]
    fn encounters_on_different_aps_do_not_count() {
        let store = TraceStore::new(vec![rec(1, 0, 0, 1000), rec(2, 1, 0, 1000)]);
        let enc = extract_encounters(&store, TimeDelta::secs(60));
        assert!(enc.is_empty());
    }

    #[test]
    fn repeated_encounters_accumulate() {
        let store = TraceStore::new(vec![
            rec(1, 0, 0, 1000),
            rec(2, 0, 0, 1000),
            rec(1, 0, 5000, 6000),
            rec(2, 0, 5000, 6000),
        ]);
        let enc = extract_encounters(&store, TimeDelta::secs(60));
        let p = UserPair::new(UserId::new(1), UserId::new(2)).unwrap();
        assert_eq!(enc.get(&p), Some(&2));
    }

    #[test]
    fn coleavings_respect_window() {
        let store = TraceStore::new(vec![
            rec(1, 0, 0, 1000),
            rec(2, 0, 0, 1100), // 100 s after user 1
            rec(3, 0, 0, 2000), // 1000 s after user 1
        ]);
        let co = extract_coleavings(&store, TimeDelta::secs(300));
        let p12 = UserPair::new(UserId::new(1), UserId::new(2)).unwrap();
        let p13 = UserPair::new(UserId::new(1), UserId::new(3)).unwrap();
        let p23 = UserPair::new(UserId::new(2), UserId::new(3)).unwrap();
        assert_eq!(co.get(&p12), Some(&1));
        assert_eq!(co.get(&p13), None);
        assert_eq!(co.get(&p23), None, "900s apart exceeds window");
    }

    #[test]
    fn coleavings_on_same_ap_only() {
        let store = TraceStore::new(vec![rec(1, 0, 0, 1000), rec(2, 1, 0, 1000)]);
        let co = extract_coleavings(&store, TimeDelta::minutes(5));
        assert!(co.is_empty());
    }

    #[test]
    fn same_user_twice_is_not_a_pair() {
        // One user with two sessions ending together on the same AP.
        let store = TraceStore::new(vec![rec(1, 0, 0, 1000), rec(1, 0, 100, 1010)]);
        let co = extract_coleavings(&store, TimeDelta::minutes(5));
        assert!(co.is_empty());
        let enc = extract_encounters(&store, TimeDelta::secs(60));
        assert!(enc.is_empty());
    }

    #[test]
    fn leaving_stats_fraction() {
        let store = TraceStore::new(vec![
            rec(1, 0, 0, 1000),
            rec(2, 0, 0, 1050),    // co-leave with 1
            rec(1, 0, 5000, 9000), // solo leave for 1
        ]);
        let stats = leaving_stats(&store, TimeDelta::secs(300));
        let s1 = stats[&UserId::new(1)];
        assert_eq!(s1.total, 2);
        assert_eq!(s1.co_leavings, 1);
        assert!((s1.co_leaving_fraction() - 0.5).abs() < 1e-12);
        let s2 = stats[&UserId::new(2)];
        assert_eq!(s2.total, 1);
        assert_eq!(s2.co_leavings, 1);
        assert_eq!(LeavingStats::default().co_leaving_fraction(), 0.0);
    }

    #[test]
    fn leaving_stats_look_backwards_too() {
        // User 2 leaves *after* user 1: both must see the shared event.
        let store = TraceStore::new(vec![rec(1, 0, 0, 1000), rec(2, 0, 0, 1200)]);
        let stats = leaving_stats(&store, TimeDelta::secs(300));
        assert_eq!(stats[&UserId::new(1)].co_leavings, 1);
        assert_eq!(stats[&UserId::new(2)].co_leavings, 1);
    }

    #[test]
    fn conditional_probability_table() {
        let mut enc = HashMap::new();
        let mut co = HashMap::new();
        let p12 = UserPair::new(UserId::new(1), UserId::new(2)).unwrap();
        let p13 = UserPair::new(UserId::new(1), UserId::new(3)).unwrap();
        let p14 = UserPair::new(UserId::new(1), UserId::new(4)).unwrap();
        enc.insert(p12, 4u32);
        co.insert(p12, 2u32);
        enc.insert(p13, 2u32);
        co.insert(p14, 3u32); // co-leaves but never encountered
        let table = coleave_given_encounter(&enc, &co);
        assert!((table[&p12] - 0.5).abs() < 1e-12);
        assert_eq!(table[&p13], 0.0);
        assert!(!table.contains_key(&p14));
    }

    #[test]
    fn conditional_probability_clamps_to_one() {
        let mut enc = HashMap::new();
        let mut co = HashMap::new();
        let p = UserPair::new(UserId::new(1), UserId::new(2)).unwrap();
        enc.insert(p, 1u32);
        co.insert(p, 5u32);
        let table = coleave_given_encounter(&enc, &co);
        assert_eq!(table[&p], 1.0);
    }
}
