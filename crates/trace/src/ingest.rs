//! Streaming, fault-tolerant ingestion of session and demand CSV logs.
//!
//! The batch codec in [`crate::csv`] materializes a whole file and aborts
//! on the first malformed row — the right contract for artifacts we wrote
//! ourselves, and the wrong one for months of raw controller logs where a
//! single corrupt day must not poison the model (see `docs/INGESTION.md`).
//! This module supplies the production path:
//!
//! * [`SessionReader`] / [`DemandReader`] — streaming iterators over any
//!   [`BufRead`] source that yield one record at a time in O(1) memory;
//! * [`IngestMode::Strict`] — first bad row aborts with its line number
//!   and detail (exactly the historical [`crate::csv::read_sessions`]
//!   behavior, plus id-range checking);
//! * [`IngestMode::Lenient`] — bad rows are skipped and classified into
//!   the [`RowFault`] taxonomy, tallied in an [`IngestReport`] and
//!   published to the `trace.ingest.*` metrics at end of file.
//!
//! Lenient ingestion is deterministic: classification depends only on the
//! byte content of the file, never on timing or thread count, so degraded
//! replays stay byte-identical at any `--threads` setting.

use std::collections::HashSet;
use std::hash::{Hash, Hasher};
use std::io::{self, BufRead};
use std::marker::PhantomData;

use s3_obs::{Desc, Stability, Unit};
use s3_types::{ApId, BuildingId, Bytes, ControllerId, Timestamp, UserId, APP_CATEGORY_COUNT};

use crate::csv::{CsvError, DEMAND_HEADER, SESSION_HEADER};
use crate::{SessionDemand, SessionRecord};

// Ingestion metrics (documented in docs/METRICS.md). All counters are
// published once per completed (EOF-reached) ingest, so totals are
// independent of how the iterator is driven.
static ROWS_READ: Desc = Desc {
    name: "trace.ingest.rows_read",
    help: "Non-blank data rows examined by the streaming CSV readers",
    unit: Unit::Count,
    stability: Stability::Stable,
};
static ROWS_OK: Desc = Desc {
    name: "trace.ingest.rows_ok",
    help: "Data rows accepted by the streaming CSV readers",
    unit: Unit::Count,
    stability: Stability::Stable,
};
static ROWS_SKIPPED: Desc = Desc {
    name: "trace.ingest.rows_skipped",
    help: "Data rows skipped by lenient ingestion (all fault classes)",
    unit: Unit::Count,
    stability: Stability::Stable,
};
static BAD_FIELD_COUNT: Desc = Desc {
    name: "trace.ingest.bad_field_count",
    help: "Rows skipped for a wrong comma-separated field count",
    unit: Unit::Count,
    stability: Stability::Stable,
};
static BAD_INT: Desc = Desc {
    name: "trace.ingest.bad_int",
    help: "Rows skipped for an unparsable integer field",
    unit: Unit::Count,
    stability: Stability::Stable,
};
static ID_OVERFLOW: Desc = Desc {
    name: "trace.ingest.id_overflow",
    help: "Rows skipped for an id field exceeding the 32-bit id space",
    unit: Unit::Count,
    stability: Stability::Stable,
};
static INVERTED_INTERVAL: Desc = Desc {
    name: "trace.ingest.inverted_interval",
    help: "Rows skipped for an interval that ends before it starts",
    unit: Unit::Count,
    stability: Stability::Stable,
};
static DUPLICATE_ROWS: Desc = Desc {
    name: "trace.ingest.duplicate_rows",
    help: "Rows skipped as exact duplicates of an earlier row (lenient mode)",
    unit: Unit::Count,
    stability: Stability::Stable,
};
static NON_MONOTONE: Desc = Desc {
    name: "trace.ingest.non_monotone",
    help: "Accepted rows whose interval starts before the previous row's (warning, not a skip)",
    unit: Unit::Count,
    stability: Stability::Stable,
};

/// How a streaming reader reacts to a malformed row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestMode {
    /// First bad row aborts the ingest with a [`CsvError::Parse`] carrying
    /// the 1-based line number — the historical codec contract.
    Strict,
    /// Bad rows are skipped, classified into [`RowFault`] classes and
    /// tallied in the reader's [`IngestReport`]; only I/O errors abort.
    Lenient,
}

/// The taxonomy of row-level anomalies recognized by lenient ingestion.
///
/// Every class except [`RowFault::NonMonotone`] causes the row to be
/// skipped; a non-monotone interval start is merely *counted* (the stores
/// sort records on construction, so out-of-order rows — e.g. from
/// per-controller clock skew — are still usable data).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowFault {
    /// Wrong number of comma-separated fields (truncated or garbled row).
    FieldCount,
    /// A numeric field that does not parse as `u64`.
    BadInt,
    /// An id field that parses but exceeds `u32::MAX`.
    IdOverflow,
    /// An interval that ends before it starts (or, for demands, a
    /// zero-length interval).
    Inverted,
    /// An exact byte-for-byte duplicate of an earlier data row
    /// (lenient mode only; strict mode keeps the historical behavior of
    /// passing duplicates through).
    Duplicate,
    /// An accepted row whose interval starts before the previous accepted
    /// row's start — a warning class, not a skip.
    NonMonotone,
}

impl RowFault {
    /// All classes, in report order.
    pub const ALL: [RowFault; 6] = [
        RowFault::FieldCount,
        RowFault::BadInt,
        RowFault::IdOverflow,
        RowFault::Inverted,
        RowFault::Duplicate,
        RowFault::NonMonotone,
    ];

    /// Short kebab-case label used in report renderings.
    pub fn label(self) -> &'static str {
        match self {
            RowFault::FieldCount => "bad-field-count",
            RowFault::BadInt => "bad-int",
            RowFault::IdOverflow => "id-overflow",
            RowFault::Inverted => "inverted-interval",
            RowFault::Duplicate => "duplicate",
            RowFault::NonMonotone => "non-monotone",
        }
    }

    /// Whether rows of this class are dropped by lenient ingestion.
    pub fn skips_row(self) -> bool {
        !matches!(self, RowFault::NonMonotone)
    }

    fn desc(self) -> &'static Desc {
        match self {
            RowFault::FieldCount => &BAD_FIELD_COUNT,
            RowFault::BadInt => &BAD_INT,
            RowFault::IdOverflow => &ID_OVERFLOW,
            RowFault::Inverted => &INVERTED_INTERVAL,
            RowFault::Duplicate => &DUPLICATE_ROWS,
            RowFault::NonMonotone => &NON_MONOTONE,
        }
    }

    const fn index(self) -> usize {
        match self {
            RowFault::FieldCount => 0,
            RowFault::BadInt => 1,
            RowFault::IdOverflow => 2,
            RowFault::Inverted => 3,
            RowFault::Duplicate => 4,
            RowFault::NonMonotone => 5,
        }
    }
}

/// A classified row-level failure, produced while parsing one data row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowError {
    /// The taxonomy class.
    pub fault: RowFault,
    /// Human-readable detail (field name, offending text).
    pub detail: String,
}

/// Per-class tallies of one ingest pass.
///
/// Produced by the streaming readers and by the CLI's foreign-trace
/// converter; rendered with [`IngestReport::summary`] and published to the
/// `trace.ingest.*` metrics via [`IngestReport::publish`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// Non-blank data rows examined (header excluded).
    pub rows_read: u64,
    /// Rows accepted and yielded to the caller.
    pub rows_ok: u64,
    counts: [u64; RowFault::ALL.len()],
}

impl IngestReport {
    /// An empty report.
    pub fn new() -> Self {
        IngestReport::default()
    }

    /// Records one occurrence of `fault`.
    pub fn note(&mut self, fault: RowFault) {
        self.counts[fault.index()] = self.counts[fault.index()].saturating_add(1);
    }

    /// Occurrences of `fault`.
    pub fn count(&self, fault: RowFault) -> u64 {
        self.counts[fault.index()]
    }

    /// Total rows skipped (sum over the skipping classes).
    pub fn rows_skipped(&self) -> u64 {
        RowFault::ALL
            .iter()
            .filter(|f| f.skips_row())
            .map(|&f| self.count(f))
            .sum()
    }

    /// Non-monotone warnings (rows kept, but out of order).
    pub fn warnings(&self) -> u64 {
        self.count(RowFault::NonMonotone)
    }

    /// True when nothing was skipped and no warning was raised.
    pub fn is_clean(&self) -> bool {
        self.rows_skipped() == 0 && self.warnings() == 0
    }

    /// One-line human-readable rendering, e.g. for `s3wlan analyze`.
    pub fn summary(&self) -> String {
        let mut parts = Vec::new();
        for fault in RowFault::ALL.iter().filter(|f| f.skips_row()) {
            let n = self.count(*fault);
            if n > 0 {
                parts.push(format!("{} {}", fault.label(), n));
            }
        }
        let detail = if parts.is_empty() {
            String::new()
        } else {
            format!(" ({})", parts.join(", "))
        };
        format!(
            "{} rows: {} ok, {} skipped{}, {} non-monotone warnings",
            self.rows_read,
            self.rows_ok,
            self.rows_skipped(),
            detail,
            self.warnings()
        )
    }

    /// Adds the tallies to the process-wide `trace.ingest.*` counters.
    ///
    /// The streaming readers call this once per EOF-completed pass; call it
    /// directly only for reports assembled by hand (as the CLI converter
    /// does).
    pub fn publish(&self) {
        let registry = s3_obs::global();
        registry.counter(&ROWS_READ).add(self.rows_read);
        registry.counter(&ROWS_OK).add(self.rows_ok);
        registry.counter(&ROWS_SKIPPED).add(self.rows_skipped());
        for fault in RowFault::ALL {
            registry.counter(fault.desc()).add(self.count(fault));
        }
    }
}

/// A CSV row type the streaming reader knows how to parse.
///
/// Implemented for [`SessionRecord`] and [`SessionDemand`]; the trait only
/// exists so the two readers can share one iterator implementation.
pub trait IngestRow: Sized {
    /// The exact header line of this row type's file format.
    const HEADER: &'static str;

    /// Parses the pre-split fields of one data row. The field count has
    /// already been validated. Returns the record plus its interval start
    /// in seconds (for monotonicity tracking).
    fn parse_row(fields: &[&str]) -> Result<(Self, u64), RowError>;
}

fn parse_u64_field(s: &str, what: &str) -> Result<u64, RowError> {
    s.trim().parse::<u64>().map_err(|e| RowError {
        fault: RowFault::BadInt,
        detail: format!("bad {what} {s:?}: {e}"),
    })
}

/// Parses an id field, rejecting values outside the 32-bit id space rather
/// than silently wrapping modulo 2³².
fn parse_id_field(s: &str, what: &str) -> Result<u32, RowError> {
    let v = parse_u64_field(s, what)?;
    u32::try_from(v).map_err(|_| RowError {
        fault: RowFault::IdOverflow,
        detail: format!("{what} id {v} out of range (max {})", u32::MAX),
    })
}

fn parse_volumes(fields: &[&str]) -> Result<[Bytes; APP_CATEGORY_COUNT], RowError> {
    let mut volume_by_app = [Bytes::ZERO; APP_CATEGORY_COUNT];
    for (slot, field) in volume_by_app.iter_mut().zip(fields) {
        *slot = Bytes::new(parse_u64_field(field, "volume")?);
    }
    Ok(volume_by_app)
}

impl IngestRow for SessionRecord {
    const HEADER: &'static str = SESSION_HEADER;

    fn parse_row(fields: &[&str]) -> Result<(Self, u64), RowError> {
        let user = UserId::new(parse_id_field(fields[0], "user")?);
        let ap = ApId::new(parse_id_field(fields[1], "ap")?);
        let controller = ControllerId::new(parse_id_field(fields[2], "controller")?);
        let connect_secs = parse_u64_field(fields[3], "connect")?;
        let disconnect_secs = parse_u64_field(fields[4], "disconnect")?;
        if disconnect_secs < connect_secs {
            return Err(RowError {
                fault: RowFault::Inverted,
                detail: "disconnect precedes connect".to_string(),
            });
        }
        let record = SessionRecord {
            user,
            ap,
            controller,
            connect: Timestamp::from_secs(connect_secs),
            disconnect: Timestamp::from_secs(disconnect_secs),
            volume_by_app: parse_volumes(&fields[5..])?,
        };
        Ok((record, connect_secs))
    }
}

impl IngestRow for SessionDemand {
    const HEADER: &'static str = DEMAND_HEADER;

    fn parse_row(fields: &[&str]) -> Result<(Self, u64), RowError> {
        let user = UserId::new(parse_id_field(fields[0], "user")?);
        let building = BuildingId::new(parse_id_field(fields[1], "building")?);
        let controller = ControllerId::new(parse_id_field(fields[2], "controller")?);
        let arrive_secs = parse_u64_field(fields[3], "arrive")?;
        let depart_secs = parse_u64_field(fields[4], "depart")?;
        if depart_secs <= arrive_secs {
            return Err(RowError {
                fault: RowFault::Inverted,
                detail: "depart must be after arrive".to_string(),
            });
        }
        let demand = SessionDemand {
            user,
            building,
            controller,
            arrive: Timestamp::from_secs(arrive_secs),
            depart: Timestamp::from_secs(depart_secs),
            volume_by_app: parse_volumes(&fields[5..])?,
        };
        Ok((demand, arrive_secs))
    }
}

/// Streaming CSV reader over any [`BufRead`] source.
///
/// Yields one parsed row per [`Iterator::next`] call without materializing
/// the file; blank lines are skipped; the header is validated up front in
/// [`StreamingReader::new`]. Behavior on malformed rows is governed by the
/// [`IngestMode`]. Use the [`SessionReader`] / [`DemandReader`] aliases.
#[derive(Debug)]
pub struct StreamingReader<R: BufRead, T: IngestRow> {
    lines: io::Lines<R>,
    mode: IngestMode,
    line_no: usize,
    report: IngestReport,
    /// Hashes of accepted rows, for duplicate detection (lenient only).
    seen: HashSet<u64>,
    last_start: Option<u64>,
    finished: bool,
    publish_on_eof: bool,
    _row: PhantomData<T>,
}

/// [`StreamingReader`] over session records (`user,ap,controller,...`).
pub type SessionReader<R> = StreamingReader<R, SessionRecord>;
/// [`StreamingReader`] over session demands (`user,building,controller,...`).
pub type DemandReader<R> = StreamingReader<R, SessionDemand>;

impl<R: BufRead, T: IngestRow> StreamingReader<R, T> {
    /// Opens a reader: consumes and validates the header line.
    ///
    /// # Errors
    ///
    /// [`CsvError::Parse`] on a missing or wrong header (even in lenient
    /// mode — a bad header means the whole file is the wrong format);
    /// [`CsvError::Io`] on reader failures.
    pub fn new(reader: R, mode: IngestMode) -> Result<Self, CsvError> {
        let mut lines = reader.lines();
        let header = lines.next().ok_or_else(|| CsvError::Parse {
            line: 1,
            detail: "empty input (missing header)".to_string(),
        })??;
        if header.trim() != T::HEADER {
            return Err(CsvError::Parse {
                line: 1,
                detail: format!("unexpected header {header:?}"),
            });
        }
        Ok(StreamingReader {
            lines,
            mode,
            line_no: 1,
            report: IngestReport::new(),
            seen: HashSet::new(),
            last_start: None,
            finished: false,
            publish_on_eof: true,
            _row: PhantomData,
        })
    }

    /// Disables the end-of-file publication of this reader's
    /// [`IngestReport`] to the `trace.ingest.*` metrics.
    ///
    /// Multi-pass consumers (e.g. the streaming replay path, which scans a
    /// file once for its extent and once to replay it) must publish exactly
    /// one pass, or the metric totals would double relative to a
    /// single-read in-memory ingest. Silence every pass but the canonical
    /// one with this builder; the in-memory [`IngestReport`] is still
    /// tallied and available through [`StreamingReader::report`].
    #[must_use]
    pub fn without_publish(mut self) -> Self {
        self.publish_on_eof = false;
        self
    }

    /// The tallies so far (complete once the iterator has returned `None`).
    pub fn report(&self) -> &IngestReport {
        &self.report
    }

    /// Consumes the reader, returning its report.
    pub fn into_report(self) -> IngestReport {
        self.report
    }

    /// The mode this reader runs in.
    pub fn mode(&self) -> IngestMode {
        self.mode
    }

    fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        if self.publish_on_eof {
            self.report.publish();
        }
    }
}

impl<R: BufRead, T: IngestRow> Iterator for StreamingReader<R, T> {
    type Item = Result<T, CsvError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.finished {
            return None;
        }
        loop {
            let line = match self.lines.next() {
                None => {
                    self.finish();
                    return None;
                }
                Some(Err(e)) => {
                    self.finished = true;
                    return Some(Err(CsvError::Io(e)));
                }
                Some(Ok(line)) => line,
            };
            self.line_no += 1;
            if line.trim().is_empty() {
                continue;
            }
            self.report.rows_read += 1;
            let fields: Vec<&str> = line.split(',').collect();
            let parsed = if fields.len() != 5 + APP_CATEGORY_COUNT {
                Err(RowError {
                    fault: RowFault::FieldCount,
                    detail: format!(
                        "expected {} fields, got {}",
                        5 + APP_CATEGORY_COUNT,
                        fields.len()
                    ),
                })
            } else {
                T::parse_row(&fields)
            };
            match parsed {
                Ok((row, start)) => {
                    if self.mode == IngestMode::Lenient {
                        let mut hasher = std::collections::hash_map::DefaultHasher::new();
                        line.trim().hash(&mut hasher);
                        if !self.seen.insert(hasher.finish()) {
                            self.report.note(RowFault::Duplicate);
                            continue;
                        }
                    }
                    if self.last_start.is_some_and(|prev| start < prev) {
                        self.report.note(RowFault::NonMonotone);
                    }
                    self.last_start = Some(start);
                    self.report.rows_ok += 1;
                    return Some(Ok(row));
                }
                Err(e) => match self.mode {
                    IngestMode::Strict => {
                        self.finished = true;
                        return Some(Err(CsvError::Parse {
                            line: self.line_no,
                            detail: e.detail,
                        }));
                    }
                    IngestMode::Lenient => {
                        self.report.note(e.fault);
                        continue;
                    }
                },
            }
        }
    }
}

/// Reads a whole session log leniently: skipped rows are tallied, never
/// fatal. Only a missing/garbled header or an I/O failure errors.
///
/// # Errors
///
/// [`CsvError::Parse`] for the header, [`CsvError::Io`] for the reader.
pub fn read_sessions_lenient<R: BufRead>(
    reader: R,
) -> Result<(Vec<SessionRecord>, IngestReport), CsvError> {
    collect_lenient(SessionReader::new(reader, IngestMode::Lenient)?)
}

/// Reads a whole demand log leniently; see [`read_sessions_lenient`].
///
/// # Errors
///
/// [`CsvError::Parse`] for the header, [`CsvError::Io`] for the reader.
pub fn read_demands_lenient<R: BufRead>(
    reader: R,
) -> Result<(Vec<SessionDemand>, IngestReport), CsvError> {
    collect_lenient(DemandReader::new(reader, IngestMode::Lenient)?)
}

fn collect_lenient<R: BufRead, T: IngestRow>(
    mut reader: StreamingReader<R, T>,
) -> Result<(Vec<T>, IngestReport), CsvError> {
    let mut out = Vec::new();
    for row in reader.by_ref() {
        out.push(row?);
    }
    Ok((out, reader.into_report()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csv::write_sessions;
    use crate::record::concentrated_volumes;
    use s3_types::AppCategory;
    use std::io::BufReader;

    fn sample() -> Vec<SessionRecord> {
        vec![
            SessionRecord {
                user: UserId::new(1),
                ap: ApId::new(2),
                controller: ControllerId::new(0),
                connect: Timestamp::from_secs(100),
                disconnect: Timestamp::from_secs(500),
                volume_by_app: concentrated_volumes(AppCategory::Video, Bytes::new(999)),
            },
            SessionRecord {
                user: UserId::new(3),
                ap: ApId::new(0),
                controller: ControllerId::new(1),
                connect: Timestamp::from_secs(600),
                disconnect: Timestamp::from_secs(900),
                volume_by_app: concentrated_volumes(AppCategory::Im, Bytes::new(7)),
            },
        ]
    }

    fn session_csv(rows: &[&str]) -> String {
        let mut text = format!("{SESSION_HEADER}\n");
        for row in rows {
            text.push_str(row);
            text.push('\n');
        }
        text
    }

    #[test]
    fn streaming_strict_matches_batch_codec() {
        let mut buf = Vec::new();
        write_sessions(&mut buf, &sample()).unwrap();
        let streamed: Vec<SessionRecord> =
            SessionReader::new(BufReader::new(buf.as_slice()), IngestMode::Strict)
                .unwrap()
                .collect::<Result<_, _>>()
                .unwrap();
        assert_eq!(streamed, sample());
    }

    #[test]
    fn strict_mode_aborts_with_line_number() {
        let data = session_csv(&["1,2,0,100,500,0,0,0,0,0,0", "x,2,0,100,500,0,0,0,0,0,0"]);
        let mut reader =
            SessionReader::new(BufReader::new(data.as_bytes()), IngestMode::Strict).unwrap();
        assert!(reader.next().unwrap().is_ok());
        let err = reader.next().unwrap().unwrap_err();
        assert!(matches!(err, CsvError::Parse { line: 3, .. }), "{err}");
        assert!(reader.next().is_none(), "strict reader fuses after error");
    }

    #[test]
    fn lenient_classifies_each_fault() {
        let data = session_csv(&[
            "1,2,0,100,500,0,0,0,0,0,0",          // ok
            "1,2,0",                              // field count
            "x,2,0,100,500,0,0,0,0,0,0",          // bad int
            "4294967296,2,0,100,500,0,0,0,0,0,0", // id overflow
            "1,2,0,500,100,0,0,0,0,0,0",          // inverted
            "1,2,0,100,500,0,0,0,0,0,0",          // duplicate of row 1
            "2,2,0,50,500,0,0,0,0,0,0",           // accepted, non-monotone start
        ]);
        let (rows, report) = read_sessions_lenient(BufReader::new(data.as_bytes())).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(report.rows_read, 7);
        assert_eq!(report.rows_ok, 2);
        assert_eq!(report.rows_skipped(), 5);
        assert_eq!(report.count(RowFault::FieldCount), 1);
        assert_eq!(report.count(RowFault::BadInt), 1);
        assert_eq!(report.count(RowFault::IdOverflow), 1);
        assert_eq!(report.count(RowFault::Inverted), 1);
        assert_eq!(report.count(RowFault::Duplicate), 1);
        assert_eq!(report.warnings(), 1);
        assert!(!report.is_clean());
        let text = report.summary();
        assert!(text.contains("7 rows"), "{text}");
        assert!(text.contains("id-overflow 1"), "{text}");
    }

    #[test]
    fn lenient_on_clean_input_is_clean() {
        let mut buf = Vec::new();
        write_sessions(&mut buf, &sample()).unwrap();
        let (rows, report) = read_sessions_lenient(BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(rows, sample());
        assert!(report.is_clean(), "{}", report.summary());
        assert_eq!(
            report.summary(),
            "2 rows: 2 ok, 0 skipped, 0 non-monotone warnings"
        );
    }

    #[test]
    fn strict_mode_passes_duplicates_through() {
        // Historical contract: the batch codec never deduplicated.
        let data = session_csv(&["1,2,0,100,500,0,0,0,0,0,0", "1,2,0,100,500,0,0,0,0,0,0"]);
        let rows: Vec<SessionRecord> =
            SessionReader::new(BufReader::new(data.as_bytes()), IngestMode::Strict)
                .unwrap()
                .collect::<Result<_, _>>()
                .unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn header_is_validated_in_both_modes() {
        for mode in [IngestMode::Strict, IngestMode::Lenient] {
            let Err(err) = SessionReader::new(BufReader::new(&b"nope\n"[..]), mode) else {
                panic!("bad header must fail");
            };
            assert!(err.to_string().contains("unexpected header"));
            let Err(err) = SessionReader::new(BufReader::new(&b""[..]), mode) else {
                panic!("empty input must fail");
            };
            assert!(matches!(err, CsvError::Parse { line: 1, .. }));
        }
    }

    #[test]
    fn demand_reader_rejects_zero_length_interval() {
        let data = format!("{DEMAND_HEADER}\n1,0,0,100,100,0,0,0,0,0,0\n");
        let (rows, report) = read_demands_lenient(BufReader::new(data.as_bytes())).unwrap();
        assert!(rows.is_empty());
        assert_eq!(report.count(RowFault::Inverted), 1);
    }

    #[test]
    fn id_overflow_is_distinct_from_bad_int() {
        let max_ok = format!("{},2,0,100,500,0,0,0,0,0,0", u32::MAX);
        let data = session_csv(&[&max_ok, "4294967296,2,0,100,500,0,0,0,0,0,0"]);
        let (rows, report) = read_sessions_lenient(BufReader::new(data.as_bytes())).unwrap();
        assert_eq!(rows.len(), 1, "u32::MAX itself is a valid id");
        assert_eq!(rows[0].user, UserId::new(u32::MAX));
        assert_eq!(report.count(RowFault::IdOverflow), 1);
        assert_eq!(report.count(RowFault::BadInt), 0);
    }

    #[test]
    fn reports_are_order_stable() {
        // The same bytes must always produce the same report — the property
        // the lenient-replay determinism check in CI rests on.
        let data = session_csv(&[
            "1,2,0,100,500,0,0,0,0,0,0",
            "junk",
            "1,2,0,100,500,0,0,0,0,0,0",
        ]);
        let (_, a) = read_sessions_lenient(BufReader::new(data.as_bytes())).unwrap();
        let (_, b) = read_sessions_lenient(BufReader::new(data.as_bytes())).unwrap();
        assert_eq!(a, b);
    }
}
