//! A hand-rolled CSV codec for session logs.
//!
//! No field in a trace record can contain a comma or a quote (they are all
//! numeric), so a full RFC-4180 implementation would be dead weight; this
//! codec writes plain comma-separated numerics with a header row and
//! validates everything on the way back in.

use std::io::{self, BufRead, Write};

use crate::ingest::{DemandReader, IngestMode, SessionReader};
use crate::{SessionDemand, SessionRecord};

/// Errors from CSV decoding.
#[derive(Debug)]
pub enum CsvError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// A malformed line.
    Parse {
        /// 1-based line number (header is line 1).
        line: usize,
        /// What went wrong.
        detail: String,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "csv i/o error: {e}"),
            CsvError::Parse { line, detail } => {
                write!(f, "csv parse error at line {line}: {detail}")
            }
        }
    }
}

impl std::error::Error for CsvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CsvError::Io(e) => Some(e),
            CsvError::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for CsvError {
    fn from(e: io::Error) -> Self {
        CsvError::Io(e)
    }
}

pub(crate) const SESSION_HEADER: &str =
    "user,ap,controller,connect,disconnect,im,p2p,music,email,video,web";

/// Writes the session-CSV header row.
///
/// Pair with [`write_session_row`] to stream records one at a time without
/// materializing them (the batch [`write_sessions`] is this plus a loop).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_session_header<W: Write>(mut w: W) -> io::Result<()> {
    writeln!(w, "{SESSION_HEADER}")
}

/// Writes one session record as a CSV row (no header).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_session_row<W: Write>(mut w: W, r: &SessionRecord) -> io::Result<()> {
    write!(
        w,
        "{},{},{},{},{}",
        r.user.raw(),
        r.ap.raw(),
        r.controller.raw(),
        r.connect.as_secs(),
        r.disconnect.as_secs()
    )?;
    for v in &r.volume_by_app {
        write!(w, ",{}", v.as_u64())?;
    }
    writeln!(w)
}

/// Writes records as CSV with a header row.
///
/// A `&mut` reference to any writer can be passed (`Write` is implemented
/// for `&mut W`).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_sessions<W: Write>(mut w: W, records: &[SessionRecord]) -> io::Result<()> {
    write_session_header(&mut w)?;
    for r in records {
        write_session_row(&mut w, r)?;
    }
    Ok(())
}

/// Reads records from CSV produced by [`write_sessions`].
///
/// A `&mut` reference to any reader can be passed. This is the strict
/// batch path — a thin wrapper over [`crate::ingest::SessionReader`]; use
/// the streaming reader directly (or
/// [`crate::ingest::read_sessions_lenient`]) for dirty input.
///
/// # Errors
///
/// [`CsvError::Parse`] on a bad header, wrong field count, unparsable
/// number, an id outside the 32-bit id space, or a record whose disconnect
/// precedes its connect; [`CsvError::Io`] on reader failures.
pub fn read_sessions<R: BufRead>(r: R) -> Result<Vec<SessionRecord>, CsvError> {
    SessionReader::new(r, IngestMode::Strict)?.collect()
}

pub(crate) const DEMAND_HEADER: &str =
    "user,building,controller,arrive,depart,im,p2p,music,email,video,web";

/// Writes session demands as CSV with a header row.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_demands<W: Write>(mut w: W, demands: &[SessionDemand]) -> io::Result<()> {
    writeln!(w, "{DEMAND_HEADER}")?;
    for d in demands {
        write!(
            w,
            "{},{},{},{},{}",
            d.user.raw(),
            d.building.raw(),
            d.controller.raw(),
            d.arrive.as_secs(),
            d.depart.as_secs()
        )?;
        for v in &d.volume_by_app {
            write!(w, ",{}", v.as_u64())?;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Reads session demands from CSV produced by [`write_demands`].
///
/// The strict batch path — a thin wrapper over
/// [`crate::ingest::DemandReader`]; see [`read_sessions`].
///
/// # Errors
///
/// [`CsvError::Parse`] on a bad header, wrong field count, unparsable
/// number, an id outside the 32-bit id space, or a demand whose departure
/// is not after its arrival; [`CsvError::Io`] on reader failures.
pub fn read_demands<R: BufRead>(r: R) -> Result<Vec<SessionDemand>, CsvError> {
    DemandReader::new(r, IngestMode::Strict)?.collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::concentrated_volumes;
    use s3_types::{ApId, AppCategory, BuildingId, Bytes, ControllerId, Timestamp, UserId};
    use std::io::BufReader;

    fn sample() -> Vec<SessionRecord> {
        vec![
            SessionRecord {
                user: UserId::new(1),
                ap: ApId::new(2),
                controller: ControllerId::new(0),
                connect: Timestamp::from_secs(100),
                disconnect: Timestamp::from_secs(500),
                volume_by_app: concentrated_volumes(AppCategory::Video, Bytes::new(999)),
            },
            SessionRecord {
                user: UserId::new(3),
                ap: ApId::new(0),
                controller: ControllerId::new(1),
                connect: Timestamp::from_secs(50),
                disconnect: Timestamp::from_secs(51),
                volume_by_app: [
                    Bytes::new(1),
                    Bytes::new(2),
                    Bytes::new(3),
                    Bytes::new(4),
                    Bytes::new(5),
                    Bytes::new(6),
                ],
            },
        ]
    }

    #[test]
    fn round_trip() {
        let records = sample();
        let mut buf = Vec::new();
        write_sessions(&mut buf, &records).unwrap();
        let back = read_sessions(BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn empty_round_trip() {
        let mut buf = Vec::new();
        write_sessions(&mut buf, &[]).unwrap();
        let back = read_sessions(BufReader::new(buf.as_slice())).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn blank_lines_are_skipped() {
        let mut buf = Vec::new();
        write_sessions(&mut buf, &sample()).unwrap();
        buf.extend_from_slice(b"\n\n");
        let back = read_sessions(BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn rejects_missing_header() {
        let err = read_sessions(BufReader::new(&b""[..])).unwrap_err();
        assert!(matches!(err, CsvError::Parse { line: 1, .. }));
        let err = read_sessions(BufReader::new(&b"nope\n"[..])).unwrap_err();
        assert!(err.to_string().contains("unexpected header"));
    }

    #[test]
    fn rejects_wrong_field_count() {
        let data = format!("{SESSION_HEADER}\n1,2,3\n");
        let err = read_sessions(BufReader::new(data.as_bytes())).unwrap_err();
        assert!(matches!(err, CsvError::Parse { line: 2, .. }));
        assert!(err.to_string().contains("expected 11 fields"));
    }

    #[test]
    fn rejects_bad_numbers_and_inverted_times() {
        let data = format!("{SESSION_HEADER}\nx,2,0,100,500,0,0,0,0,0,0\n");
        let err = read_sessions(BufReader::new(data.as_bytes())).unwrap_err();
        assert!(err.to_string().contains("bad user"));
        let data = format!("{SESSION_HEADER}\n1,2,0,500,100,0,0,0,0,0,0\n");
        let err = read_sessions(BufReader::new(data.as_bytes())).unwrap_err();
        assert!(err.to_string().contains("disconnect precedes connect"));
    }

    #[test]
    fn rejects_ids_beyond_u32_instead_of_wrapping() {
        // 2^32 used to wrap silently to user 0; it must be an error that
        // names the line. Same for the other id columns.
        for bad in [
            "4294967296,2,0,100,500,0,0,0,0,0,0",
            "1,4294967296,0,100,500,0,0,0,0,0,0",
            "1,2,4294967296,100,500,0,0,0,0,0,0",
        ] {
            let data = format!("{SESSION_HEADER}\n{bad}\n");
            let err = read_sessions(BufReader::new(data.as_bytes())).unwrap_err();
            assert!(matches!(err, CsvError::Parse { line: 2, .. }), "{err}");
            assert!(err.to_string().contains("out of range"), "{err}");
        }
        let data = format!("{DEMAND_HEADER}\n1,4294967296,0,100,500,0,0,0,0,0,0\n");
        let err = read_demands(BufReader::new(data.as_bytes())).unwrap_err();
        assert!(err.to_string().contains("building id 4294967296"), "{err}");
        // The largest representable id still round-trips.
        let data = format!("{SESSION_HEADER}\n4294967295,2,0,100,500,0,0,0,0,0,0\n");
        let rows = read_sessions(BufReader::new(data.as_bytes())).unwrap();
        assert_eq!(rows[0].user, UserId::new(u32::MAX));
    }

    fn sample_demands() -> Vec<SessionDemand> {
        vec![
            SessionDemand {
                user: UserId::new(4),
                building: BuildingId::new(1),
                controller: ControllerId::new(1),
                arrive: Timestamp::from_secs(10),
                depart: Timestamp::from_secs(700),
                volume_by_app: concentrated_volumes(AppCategory::P2p, Bytes::new(12345)),
            },
            SessionDemand {
                user: UserId::new(9),
                building: BuildingId::new(0),
                controller: ControllerId::new(0),
                arrive: Timestamp::from_secs(50),
                depart: Timestamp::from_secs(51),
                volume_by_app: concentrated_volumes(AppCategory::Im, Bytes::new(7)),
            },
        ]
    }

    #[test]
    fn demand_round_trip() {
        let demands = sample_demands();
        let mut buf = Vec::new();
        write_demands(&mut buf, &demands).unwrap();
        let back = read_demands(BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(back, demands);
    }

    #[test]
    fn demand_codec_rejects_session_header() {
        // Session CSV and demand CSV are different formats; mixing them up
        // must fail loudly, not silently misread columns.
        let mut buf = Vec::new();
        write_sessions(&mut buf, &sample()).unwrap();
        let err = read_demands(BufReader::new(buf.as_slice())).unwrap_err();
        assert!(err.to_string().contains("unexpected header"));
        let mut buf = Vec::new();
        write_demands(&mut buf, &sample_demands()).unwrap();
        let err = read_sessions(BufReader::new(buf.as_slice())).unwrap_err();
        assert!(err.to_string().contains("unexpected header"));
    }

    #[test]
    fn demand_codec_rejects_zero_length_sessions() {
        let data = format!("{DEMAND_HEADER}\n1,0,0,100,100,0,0,0,0,0,0\n");
        let err = read_demands(BufReader::new(data.as_bytes())).unwrap_err();
        assert!(err.to_string().contains("depart must be after arrive"));
    }
}
