//! The `s3-dtrace/1` decision-log format — record/replay substrate for
//! the engine's audit harness.
//!
//! A decision log is line-oriented JSON (JSONL): line 1 is a
//! [`TraceHeader`] carrying run provenance (seed, thread count, strategy,
//! config hash, per-AP capacities), and every following line is one
//! [`DecisionRecord`] — an engine decision in the exact order the engine
//! made it. The format is the *conformance contract* consumed by
//! `s3wlan check-trace` and the `--step` debugger; every field and every
//! invariant over the stream is specified in `docs/TRACING.md`.
//!
//! Two disciplines make the format auditable:
//!
//! * **Fixed field order.** Records are written with a fixed key order and
//!   no whitespace, and floats use Rust's shortest round-trip formatting,
//!   so a log is byte-identical for identical decisions — the property the
//!   cross-thread determinism checks diff against.
//! * **Line-numbered reading.** [`DecisionLogReader`] yields each record
//!   with its 1-based line number, so validators report violations the way
//!   the ingestion layer reports malformed CSV rows: `line N: …`.
//!
//! The writer/reader pair is dependency-free: the JSON codec is
//! hand-rolled like the rest of the repository's I/O (`csv`, the metrics
//! snapshots).

use std::fmt;
use std::io::{self, BufRead, Write};

/// Format tag written as the `format` field of every header line.
pub const DTRACE_FORMAT: &str = "s3-dtrace/1";

/// Line 1 of a decision log: run provenance.
///
/// The header identifies *which run* produced the log; every line after it
/// describes *what the run decided*. Decision lines are byte-identical
/// across thread counts; the header's `threads` field records the
/// requested worker count as provenance and is the only field allowed to
/// differ between otherwise-identical runs (see `docs/TRACING.md`).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceHeader {
    /// Seed of the run (generator / policy seed).
    pub seed: u64,
    /// Requested worker-thread count (`0` = auto). Provenance only —
    /// decisions never depend on it.
    pub threads: u64,
    /// Requested controller-domain shard count (`1` = the unified
    /// engine). Provenance only, like `threads`: shard outputs are merged
    /// in canonical order, so decision lines never depend on it. Absent
    /// in logs written before sharding existed; parsed as `1`.
    pub shards: u64,
    /// Policy name (e.g. `llf`, `s3`).
    pub strategy: String,
    /// FNV-1a hash of the canonical run-configuration string
    /// ([`config_hash`]).
    pub config_hash: u64,
    /// Per-AP capacity `W(i)` in bits/sec, indexed by AP id. Also fixes
    /// the AP count of the run.
    pub ap_capacity_bps: Vec<f64>,
}

/// One engine decision. Variants mirror the engine's event kinds plus the
/// per-user decisions made inside an arrival batch.
///
/// `Batch`, `Tick`, `Report` and `Depart` carry the event-queue key
/// (`t`, implicit rank, `seq`) of the event that produced them; `Select`,
/// `Reject` and `Move` are decisions made *inside* the enclosing event and
/// carry only the time.
#[derive(Debug, Clone, PartialEq)]
pub enum DecisionRecord {
    /// An arrival batch handed to the policy (queue rank 3).
    Batch {
        /// Event time (batch head), whole seconds.
        at: u64,
        /// Event-queue insertion sequence.
        seq: u64,
        /// Raw user ids of the batch, in arrival order.
        users: Vec<u32>,
    },
    /// One user placed on an AP.
    Select {
        /// Decision time (the batch head).
        at: u64,
        /// Engine session index (unique per run, monotone in placement
        /// order).
        sid: u32,
        /// Raw user id.
        user: u32,
        /// Chosen AP id.
        ap: u32,
        /// Clique index within this selection call's clique partition
        /// (S³ only; `None` for baselines and degraded fallbacks).
        clique: Option<u32>,
        /// Whether a degraded-model LLF fallback made the decision.
        degraded: bool,
        /// The session's mean rate in bits/sec (the load the placement
        /// adds).
        rate_bps: f64,
        /// Candidate AP ids the policy chose from.
        candidates: Vec<u32>,
    },
    /// One user with no candidate AP (controller without APs).
    Reject {
        /// Decision time (the batch head).
        at: u64,
        /// Raw user id.
        user: u32,
    },
    /// An online-rebalancer epoch boundary (queue rank 1).
    Tick {
        /// Event time, whole seconds.
        at: u64,
        /// Event-queue insertion sequence.
        seq: u64,
    },
    /// One mid-session migration performed by the rebalancer.
    Move {
        /// Migration time (the tick time).
        at: u64,
        /// Engine session index.
        sid: u32,
        /// Raw user id.
        user: u32,
        /// AP the session left.
        from: u32,
        /// AP the session moved to.
        to: u32,
    },
    /// A controller load-report refresh (queue rank 2).
    Report {
        /// Event time, whole seconds.
        at: u64,
        /// Event-queue insertion sequence.
        seq: u64,
        /// Per-AP load in bits/sec as refreshed, indexed by AP id.
        loads_bps: Vec<f64>,
    },
    /// A session reaching its scheduled departure (queue rank 0).
    Depart {
        /// Event time, whole seconds.
        at: u64,
        /// Event-queue insertion sequence.
        seq: u64,
        /// Engine session index.
        sid: u32,
        /// Raw user id.
        user: u32,
        /// AP the session departed from.
        ap: u32,
    },
    /// Run summary — always the last record.
    End {
        /// Sessions placed on an AP.
        placed: u64,
        /// Demands with no candidate AP.
        rejected: u64,
        /// Sessions closed at their scheduled departure.
        departed: u64,
        /// Sessions still active when the trace ended.
        active: u64,
    },
}

impl DecisionRecord {
    /// The event-queue rank of the record's kind, for records produced by
    /// queue events ([the key is `(t, rank, seq)`]; `None` for in-event
    /// decisions).
    pub fn rank(&self) -> Option<u8> {
        match self {
            DecisionRecord::Depart { .. } => Some(0),
            DecisionRecord::Tick { .. } => Some(1),
            DecisionRecord::Report { .. } => Some(2),
            DecisionRecord::Batch { .. } => Some(3),
            _ => None,
        }
    }

    /// The `(t, rank, seq)` queue key, for queue-event records.
    pub fn queue_key(&self) -> Option<(u64, u8, u64)> {
        match *self {
            DecisionRecord::Depart { at, seq, .. } => Some((at, 0, seq)),
            DecisionRecord::Tick { at, seq } => Some((at, 1, seq)),
            DecisionRecord::Report { at, seq, .. } => Some((at, 2, seq)),
            DecisionRecord::Batch { at, seq, .. } => Some((at, 3, seq)),
            _ => None,
        }
    }

    /// The record's `k` tag as written on the wire.
    pub fn kind(&self) -> &'static str {
        match self {
            DecisionRecord::Batch { .. } => "batch",
            DecisionRecord::Select { .. } => "select",
            DecisionRecord::Reject { .. } => "reject",
            DecisionRecord::Tick { .. } => "tick",
            DecisionRecord::Move { .. } => "move",
            DecisionRecord::Report { .. } => "report",
            DecisionRecord::Depart { .. } => "depart",
            DecisionRecord::End { .. } => "end",
        }
    }
}

/// A decision-log read/parse failure, carrying the 1-based line number.
#[derive(Debug)]
pub struct DecisionLogError {
    /// 1-based line number of the offending line (line 1 is the header).
    pub line: u64,
    /// Human-readable failure description.
    pub detail: String,
}

impl fmt::Display for DecisionLogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.detail)
    }
}

impl std::error::Error for DecisionLogError {}

/// FNV-1a 64-bit hash of a canonical configuration string — the
/// `config_hash` header field. Stable across platforms and releases (the
/// constants are part of the format contract).
pub fn config_hash(canonical: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in canonical.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn push_f64(out: &mut String, v: f64) {
    // Rust's `{}` for f64 is the shortest string that round-trips to the
    // identical bits — the byte-determinism anchor of the format.
    use fmt::Write as _;
    write!(out, "{v}").expect("string write is infallible");
}

fn push_u32_array(out: &mut String, vals: &[u32]) {
    out.push('[');
    for (i, v) in vals.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        use fmt::Write as _;
        write!(out, "{v}").expect("string write is infallible");
    }
    out.push(']');
}

fn push_f64_array(out: &mut String, vals: &[f64]) {
    out.push('[');
    for (i, &v) in vals.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_f64(out, v);
    }
    out.push(']');
}

fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                write!(out, "\\u{:04x}", c as u32).expect("string write is infallible");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Encodes the header as its wire line (no trailing newline).
pub fn encode_header(header: &TraceHeader) -> String {
    let mut s = String::new();
    s.push_str("{\"format\":");
    push_str(&mut s, DTRACE_FORMAT);
    use fmt::Write as _;
    write!(
        s,
        ",\"seed\":{},\"threads\":{},\"shards\":{}",
        header.seed, header.threads, header.shards
    )
    .expect("string write is infallible");
    s.push_str(",\"strategy\":");
    push_str(&mut s, &header.strategy);
    write!(s, ",\"config\":\"{:016x}\"", header.config_hash).expect("string write is infallible");
    s.push_str(",\"caps\":");
    push_f64_array(&mut s, &header.ap_capacity_bps);
    s.push('}');
    s
}

/// Encodes one record as its wire line (no trailing newline).
pub fn encode_record(record: &DecisionRecord) -> String {
    use fmt::Write as _;
    let mut s = String::new();
    match record {
        DecisionRecord::Batch { at, seq, users } => {
            write!(s, "{{\"k\":\"batch\",\"t\":{at},\"seq\":{seq},\"users\":")
                .expect("string write is infallible");
            push_u32_array(&mut s, users);
            s.push('}');
        }
        DecisionRecord::Select {
            at,
            sid,
            user,
            ap,
            clique,
            degraded,
            rate_bps,
            candidates,
        } => {
            write!(
                s,
                "{{\"k\":\"select\",\"t\":{at},\"sid\":{sid},\"user\":{user},\"ap\":{ap}"
            )
            .expect("string write is infallible");
            match clique {
                Some(c) => write!(s, ",\"clique\":{c}").expect("string write is infallible"),
                None => s.push_str(",\"clique\":null"),
            }
            write!(s, ",\"deg\":{degraded},\"rate\":").expect("string write is infallible");
            push_f64(&mut s, *rate_bps);
            s.push_str(",\"cand\":");
            push_u32_array(&mut s, candidates);
            s.push('}');
        }
        DecisionRecord::Reject { at, user } => {
            write!(s, "{{\"k\":\"reject\",\"t\":{at},\"user\":{user}}}")
                .expect("string write is infallible");
        }
        DecisionRecord::Tick { at, seq } => {
            write!(s, "{{\"k\":\"tick\",\"t\":{at},\"seq\":{seq}}}")
                .expect("string write is infallible");
        }
        DecisionRecord::Move {
            at,
            sid,
            user,
            from,
            to,
        } => {
            write!(
                s,
                "{{\"k\":\"move\",\"t\":{at},\"sid\":{sid},\"user\":{user},\"from\":{from},\"to\":{to}}}"
            )
            .expect("string write is infallible");
        }
        DecisionRecord::Report { at, seq, loads_bps } => {
            write!(s, "{{\"k\":\"report\",\"t\":{at},\"seq\":{seq},\"loads\":")
                .expect("string write is infallible");
            push_f64_array(&mut s, loads_bps);
            s.push('}');
        }
        DecisionRecord::Depart {
            at,
            seq,
            sid,
            user,
            ap,
        } => {
            write!(
                s,
                "{{\"k\":\"depart\",\"t\":{at},\"seq\":{seq},\"sid\":{sid},\"user\":{user},\"ap\":{ap}}}"
            )
            .expect("string write is infallible");
        }
        DecisionRecord::End {
            placed,
            rejected,
            departed,
            active,
        } => {
            write!(
                s,
                "{{\"k\":\"end\",\"placed\":{placed},\"rejected\":{rejected},\"departed\":{departed},\"active\":{active}}}"
            )
            .expect("string write is infallible");
        }
    }
    s
}

// ---------------------------------------------------------------------------
// Decoding — a minimal JSON-object parser (strings, numbers, bools, null,
// flat arrays of numbers). Exactly what the format emits, nothing more.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Val {
    Null,
    Bool(bool),
    /// Numbers keep their raw text so integers parse exactly as `u64`.
    Num(String),
    Str(String),
    Arr(Vec<Val>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", char::from(b), self.pos))
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'n') => s.push('\n'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            s.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(&b) => {
                    // Multi-byte UTF-8 sequences pass through unchanged.
                    let start = self.pos;
                    let width = match b {
                        _ if b < 0x80 => 1,
                        _ if b >> 5 == 0b110 => 2,
                        _ if b >> 4 == 0b1110 => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(start..start + width)
                        .ok_or("truncated UTF-8")?;
                    s.push_str(std::str::from_utf8(chunk).map_err(|_| "invalid UTF-8")?);
                    self.pos += width;
                }
            }
        }
    }

    fn parse_value(&mut self) -> Result<Val, String> {
        match self.peek() {
            Some(b'"') => Ok(Val::Str(self.parse_string()?)),
            Some(b'[') => {
                self.expect(b'[')?;
                let mut vals = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Val::Arr(vals));
                }
                loop {
                    vals.push(self.parse_value()?);
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Val::Arr(vals));
                        }
                        other => return Err(format!("bad array separator {other:?}")),
                    }
                }
            }
            Some(b't') => self.parse_lit("true", Val::Bool(true)),
            Some(b'f') => self.parse_lit("false", Val::Bool(false)),
            Some(b'n') => self.parse_lit("null", Val::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => {
                let start = self.pos;
                self.pos += 1;
                while self.bytes.get(self.pos).is_some_and(|&b| {
                    b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-')
                }) {
                    self.pos += 1;
                }
                let raw =
                    std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number slice");
                Ok(Val::Num(raw.to_string()))
            }
            other => Err(format!("unexpected token {other:?}")),
        }
    }

    fn parse_lit(&mut self, lit: &str, val: Val) -> Result<Val, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(val)
        } else {
            Err(format!("expected literal {lit:?}"))
        }
    }

    /// Parses a full `{...}` object and requires end-of-input after it.
    fn parse_object(&mut self) -> Result<Vec<(String, Val)>, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
        } else {
            loop {
                let key = self.parse_string()?;
                self.expect(b':')?;
                let val = self.parse_value()?;
                fields.push((key, val));
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        break;
                    }
                    other => return Err(format!("bad object separator {other:?}")),
                }
            }
        }
        if self.peek().is_some() {
            return Err("trailing garbage after object".into());
        }
        Ok(fields)
    }
}

struct Fields(Vec<(String, Val)>);

impl Fields {
    fn get(&self, key: &str) -> Result<&Val, String> {
        self.0
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing field {key:?}"))
    }

    /// Like [`Fields::u64`], but a missing field yields `default` — for
    /// fields added to the format after logs already existed (a present
    /// field with the wrong type is still an error).
    fn u64_or(&self, key: &str, default: u64) -> Result<u64, String> {
        if self.0.iter().any(|(k, _)| k == key) {
            self.u64(key)
        } else {
            Ok(default)
        }
    }

    fn u64(&self, key: &str) -> Result<u64, String> {
        match self.get(key)? {
            Val::Num(raw) => raw
                .parse::<u64>()
                .map_err(|_| format!("field {key:?} is not an unsigned integer: {raw:?}")),
            other => Err(format!("field {key:?} is not a number: {other:?}")),
        }
    }

    fn u32(&self, key: &str) -> Result<u32, String> {
        let v = self.u64(key)?;
        u32::try_from(v).map_err(|_| format!("field {key:?} overflows u32: {v}"))
    }

    fn f64(&self, key: &str) -> Result<f64, String> {
        match self.get(key)? {
            Val::Num(raw) => raw
                .parse::<f64>()
                .map_err(|_| format!("field {key:?} is not a number: {raw:?}")),
            other => Err(format!("field {key:?} is not a number: {other:?}")),
        }
    }

    fn bool(&self, key: &str) -> Result<bool, String> {
        match self.get(key)? {
            Val::Bool(b) => Ok(*b),
            other => Err(format!("field {key:?} is not a bool: {other:?}")),
        }
    }

    fn str(&self, key: &str) -> Result<&str, String> {
        match self.get(key)? {
            Val::Str(s) => Ok(s),
            other => Err(format!("field {key:?} is not a string: {other:?}")),
        }
    }

    fn opt_u32(&self, key: &str) -> Result<Option<u32>, String> {
        match self.get(key)? {
            Val::Null => Ok(None),
            Val::Num(_) => Ok(Some(self.u32(key)?)),
            other => Err(format!("field {key:?} is not a number or null: {other:?}")),
        }
    }

    fn arr_u32(&self, key: &str) -> Result<Vec<u32>, String> {
        match self.get(key)? {
            Val::Arr(vals) => vals
                .iter()
                .map(|v| match v {
                    Val::Num(raw) => raw
                        .parse::<u32>()
                        .map_err(|_| format!("array {key:?} holds a non-u32: {raw:?}")),
                    other => Err(format!("array {key:?} holds a non-number: {other:?}")),
                })
                .collect(),
            other => Err(format!("field {key:?} is not an array: {other:?}")),
        }
    }

    fn arr_f64(&self, key: &str) -> Result<Vec<f64>, String> {
        match self.get(key)? {
            Val::Arr(vals) => vals
                .iter()
                .map(|v| match v {
                    Val::Num(raw) => raw
                        .parse::<f64>()
                        .map_err(|_| format!("array {key:?} holds a non-number: {raw:?}")),
                    other => Err(format!("array {key:?} holds a non-number: {other:?}")),
                })
                .collect(),
            other => Err(format!("field {key:?} is not an array: {other:?}")),
        }
    }
}

/// Parses a header line (without its trailing newline).
///
/// # Errors
///
/// Returns the parse failure as a `String` detail; callers attach the line
/// number.
pub fn parse_header(line: &str) -> Result<TraceHeader, String> {
    let fields = Fields(Parser::new(line).parse_object()?);
    let format = fields.str("format")?;
    if format != DTRACE_FORMAT {
        return Err(format!(
            "unsupported format {format:?} (this reader speaks {DTRACE_FORMAT:?})"
        ));
    }
    let config = fields.str("config")?;
    let config_hash = u64::from_str_radix(config, 16)
        .map_err(|_| format!("field \"config\" is not a hex hash: {config:?}"))?;
    Ok(TraceHeader {
        seed: fields.u64("seed")?,
        threads: fields.u64("threads")?,
        shards: fields.u64_or("shards", 1)?,
        strategy: fields.str("strategy")?.to_string(),
        config_hash,
        ap_capacity_bps: fields.arr_f64("caps")?,
    })
}

/// Parses a record line (without its trailing newline).
///
/// # Errors
///
/// Returns the parse failure as a `String` detail; callers attach the line
/// number.
pub fn parse_record(line: &str) -> Result<DecisionRecord, String> {
    let fields = Fields(Parser::new(line).parse_object()?);
    match fields.str("k")? {
        "batch" => Ok(DecisionRecord::Batch {
            at: fields.u64("t")?,
            seq: fields.u64("seq")?,
            users: fields.arr_u32("users")?,
        }),
        "select" => Ok(DecisionRecord::Select {
            at: fields.u64("t")?,
            sid: fields.u32("sid")?,
            user: fields.u32("user")?,
            ap: fields.u32("ap")?,
            clique: fields.opt_u32("clique")?,
            degraded: fields.bool("deg")?,
            rate_bps: fields.f64("rate")?,
            candidates: fields.arr_u32("cand")?,
        }),
        "reject" => Ok(DecisionRecord::Reject {
            at: fields.u64("t")?,
            user: fields.u32("user")?,
        }),
        "tick" => Ok(DecisionRecord::Tick {
            at: fields.u64("t")?,
            seq: fields.u64("seq")?,
        }),
        "move" => Ok(DecisionRecord::Move {
            at: fields.u64("t")?,
            sid: fields.u32("sid")?,
            user: fields.u32("user")?,
            from: fields.u32("from")?,
            to: fields.u32("to")?,
        }),
        "report" => Ok(DecisionRecord::Report {
            at: fields.u64("t")?,
            seq: fields.u64("seq")?,
            loads_bps: fields.arr_f64("loads")?,
        }),
        "depart" => Ok(DecisionRecord::Depart {
            at: fields.u64("t")?,
            seq: fields.u64("seq")?,
            sid: fields.u32("sid")?,
            user: fields.u32("user")?,
            ap: fields.u32("ap")?,
        }),
        "end" => Ok(DecisionRecord::End {
            placed: fields.u64("placed")?,
            rejected: fields.u64("rejected")?,
            departed: fields.u64("departed")?,
            active: fields.u64("active")?,
        }),
        other => Err(format!("unknown record kind {other:?}")),
    }
}

// ---------------------------------------------------------------------------
// Writer / reader
// ---------------------------------------------------------------------------

/// Streaming writer of a decision log: header first, then one record per
/// [`DecisionLogWriter::write`].
#[derive(Debug)]
pub struct DecisionLogWriter<W: Write> {
    out: W,
    records: u64,
}

impl<W: Write> DecisionLogWriter<W> {
    /// Creates a writer and writes the header line.
    ///
    /// # Errors
    ///
    /// Propagates the underlying writer's failure.
    pub fn new(mut out: W, header: &TraceHeader) -> io::Result<Self> {
        out.write_all(encode_header(header).as_bytes())?;
        out.write_all(b"\n")?;
        Ok(DecisionLogWriter { out, records: 0 })
    }

    /// Appends one record line.
    ///
    /// # Errors
    ///
    /// Propagates the underlying writer's failure.
    pub fn write(&mut self, record: &DecisionRecord) -> io::Result<()> {
        self.out.write_all(encode_record(record).as_bytes())?;
        self.out.write_all(b"\n")?;
        self.records += 1;
        Ok(())
    }

    /// Records written so far (header excluded).
    pub fn records_written(&self) -> u64 {
        self.records
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates the flush failure.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Streaming reader of a decision log: parses the header eagerly, then
/// yields `(line_number, record)` pairs. Line numbers are 1-based over the
/// whole file (the header is line 1, the first record line 2).
#[derive(Debug)]
pub struct DecisionLogReader<R: BufRead> {
    input: R,
    header: TraceHeader,
    line: u64,
}

impl<R: BufRead> DecisionLogReader<R> {
    /// Opens a log, reading and validating the header line.
    ///
    /// # Errors
    ///
    /// [`DecisionLogError`] when the header is missing or malformed, or on
    /// I/O failure.
    pub fn new(mut input: R) -> Result<Self, DecisionLogError> {
        let mut first = String::new();
        let n = input.read_line(&mut first).map_err(|e| DecisionLogError {
            line: 1,
            detail: format!("read failed: {e}"),
        })?;
        if n == 0 {
            return Err(DecisionLogError {
                line: 1,
                detail: "empty file (missing s3-dtrace header)".into(),
            });
        }
        let header = parse_header(first.trim_end_matches('\n'))
            .map_err(|detail| DecisionLogError { line: 1, detail })?;
        Ok(DecisionLogReader {
            input,
            header,
            line: 1,
        })
    }

    /// The parsed header (line 1).
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }
}

impl<R: BufRead> Iterator for DecisionLogReader<R> {
    type Item = Result<(u64, DecisionRecord), DecisionLogError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let mut buf = String::new();
            match self.input.read_line(&mut buf) {
                Ok(0) => return None,
                Ok(_) => {}
                Err(e) => {
                    self.line += 1;
                    return Some(Err(DecisionLogError {
                        line: self.line,
                        detail: format!("read failed: {e}"),
                    }));
                }
            }
            self.line += 1;
            let trimmed = buf.trim_end_matches('\n');
            if trimmed.is_empty() {
                continue;
            }
            return Some(match parse_record(trimmed) {
                Ok(record) => Ok((self.line, record)),
                Err(detail) => Err(DecisionLogError {
                    line: self.line,
                    detail,
                }),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn header() -> TraceHeader {
        TraceHeader {
            seed: 42,
            threads: 8,
            shards: 4,
            strategy: "s3".into(),
            config_hash: config_hash("policy=s3;seed=42"),
            ap_capacity_bps: vec![1e8, 1e8, 12_345.678],
        }
    }

    fn all_records() -> Vec<DecisionRecord> {
        vec![
            DecisionRecord::Batch {
                at: 100,
                seq: 2,
                users: vec![7, 9, 7],
            },
            DecisionRecord::Select {
                at: 100,
                sid: 0,
                user: 7,
                ap: 2,
                clique: Some(0),
                degraded: false,
                rate_bps: 1234.5678,
                candidates: vec![0, 1, 2],
            },
            DecisionRecord::Select {
                at: 100,
                sid: 1,
                user: 9,
                ap: 0,
                clique: None,
                degraded: true,
                rate_bps: 0.0,
                candidates: vec![0],
            },
            DecisionRecord::Reject { at: 100, user: 11 },
            DecisionRecord::Tick { at: 300, seq: 3 },
            DecisionRecord::Move {
                at: 300,
                sid: 0,
                user: 7,
                from: 2,
                to: 1,
            },
            DecisionRecord::Report {
                at: 300,
                seq: 4,
                loads_bps: vec![0.0, 1234.5678, 1e7],
            },
            DecisionRecord::Depart {
                at: 900,
                seq: 5,
                sid: 1,
                user: 9,
                ap: 0,
            },
            DecisionRecord::End {
                placed: 2,
                rejected: 1,
                departed: 1,
                active: 1,
            },
        ]
    }

    #[test]
    fn writer_reader_round_trip_every_kind() {
        let header = header();
        let records = all_records();
        let mut writer = DecisionLogWriter::new(Vec::new(), &header).unwrap();
        for r in &records {
            writer.write(r).unwrap();
        }
        assert_eq!(writer.records_written(), records.len() as u64);
        let bytes = writer.finish().unwrap();

        let reader = DecisionLogReader::new(BufReader::new(bytes.as_slice())).unwrap();
        assert_eq!(reader.header(), &header);
        let read: Vec<(u64, DecisionRecord)> =
            reader.collect::<Result<_, _>>().expect("clean log parses");
        assert_eq!(read.len(), records.len());
        for (i, ((line, got), want)) in read.iter().zip(&records).enumerate() {
            assert_eq!(*line, i as u64 + 2, "header is line 1");
            assert_eq!(got, want);
        }
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        // Shortest round-trip formatting must restore identical bits —
        // the checker's exact load-accounting replay depends on it.
        for v in [
            0.0,
            1.0 / 3.0,
            1234.5678,
            1e8,
            f64::from_bits(0x3fe5_5555_5555_5555),
        ] {
            let rec = DecisionRecord::Report {
                at: 1,
                seq: 1,
                loads_bps: vec![v],
            };
            match parse_record(&encode_record(&rec)).unwrap() {
                DecisionRecord::Report { loads_bps, .. } => {
                    assert_eq!(loads_bps[0].to_bits(), v.to_bits());
                }
                other => panic!("wrong kind: {other:?}"),
            }
        }
    }

    #[test]
    fn queue_keys_and_ranks() {
        let records = all_records();
        let keys: Vec<Option<(u64, u8, u64)>> =
            records.iter().map(DecisionRecord::queue_key).collect();
        assert_eq!(keys[0], Some((100, 3, 2)), "batch is rank 3");
        assert_eq!(keys[4], Some((300, 1, 3)), "tick is rank 1");
        assert_eq!(keys[6], Some((300, 2, 4)), "report is rank 2");
        assert_eq!(keys[7], Some((900, 0, 5)), "depart is rank 0");
        for i in [1usize, 2, 3, 5, 8] {
            assert_eq!(keys[i], None, "in-event decisions carry no queue key");
            assert_eq!(records[i].rank(), None);
        }
    }

    #[test]
    fn header_rejects_wrong_format_and_missing_fields() {
        let err = parse_header("{\"format\":\"s3-dtrace/9\",\"seed\":1}").unwrap_err();
        assert!(err.contains("unsupported format"), "{err}");
        let err = parse_header("{\"format\":\"s3-dtrace/1\",\"seed\":1}").unwrap_err();
        assert!(err.contains("missing field"), "{err}");
    }

    #[test]
    fn header_without_shards_parses_as_one() {
        // Logs written before controller-domain sharding existed carry no
        // "shards" field; they must keep parsing, as unified (1-shard)
        // runs. A present field with the wrong type is still an error.
        let mut old = encode_header(&header()).replace(",\"shards\":4", "");
        assert!(!old.contains("shards"));
        let parsed = parse_header(&old).unwrap();
        assert_eq!(parsed.shards, 1);
        assert_eq!(parsed.threads, 8, "other fields unaffected");
        old = old.replace(",\"strategy\"", ",\"shards\":\"four\",\"strategy\"");
        let err = parse_header(&old).unwrap_err();
        assert!(err.contains("not a number"), "{err}");
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let text = format!(
            "{}\n{}\nthis is not json\n",
            encode_header(&header()),
            encode_record(&DecisionRecord::Tick { at: 1, seq: 0 })
        );
        let reader = DecisionLogReader::new(BufReader::new(text.as_bytes())).unwrap();
        let results: Vec<_> = reader.collect();
        assert!(results[0].is_ok());
        let err = results[1].as_ref().unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.to_string().starts_with("line 3:"), "{err}");
    }

    #[test]
    fn empty_input_is_a_header_error() {
        let err = DecisionLogReader::new(BufReader::new(&b""[..])).unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.detail.contains("missing s3-dtrace header"), "{err}");
    }

    #[test]
    fn config_hash_is_stable_and_discriminating() {
        // FNV-1a with the standard 64-bit offset/prime: the hash of the
        // empty string is the offset basis, pinned here as a format
        // constant.
        assert_eq!(config_hash(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(config_hash("policy=llf"), config_hash("policy=llf"));
        assert_ne!(config_hash("policy=llf"), config_hash("policy=s3"));
    }

    #[test]
    fn unknown_record_kind_is_an_error() {
        let err = parse_record("{\"k\":\"frob\",\"t\":1}").unwrap_err();
        assert!(err.contains("unknown record kind"), "{err}");
    }
}
