//! Port-heuristic application classification (Section III-A).
//!
//! The paper identifies applications "by analyzing the port combination
//! using certain heuristics" from router flow logs and buckets the top
//! applications into six realms. This module is that heuristic: a static
//! port table in the spirit of early-2010s campus traffic classification —
//! sufficient because the synthetic flow generator draws its ports from the
//! same application ecosystem.

use s3_types::{AppCategory, Bytes, APP_CATEGORY_COUNT};

use crate::{FlowRecord, TransportProtocol};

/// Classifies one `(protocol, server_port)` pair into an application realm.
///
/// Returns `None` for ports that match no known application; the paper
/// likewise drops traffic outside its top-30 applications ("understanding
/// the remainder is not critical").
pub fn classify_port(protocol: TransportProtocol, port: u16) -> Option<AppCategory> {
    use AppCategory::*;
    use TransportProtocol::*;
    let category = match (protocol, port) {
        // Web browsing: HTTP/HTTPS and common proxies.
        (Tcp, 80) | (Tcp, 443) | (Tcp, 8080) | (Tcp, 3128) => WebBrowsing,
        // E-mail: SMTP(S), POP3(S), IMAP(S).
        (Tcp, 25) | (Tcp, 465) | (Tcp, 587) | (Tcp, 110) | (Tcp, 995) | (Tcp, 143) | (Tcp, 993) => {
            Email
        }
        // IM: QQ (8000/udp, 443 handled above as web), MSN 1863, XMPP 5222,
        // IRC 6667, QQ file 4000.
        (Udp, 8000) | (Udp, 4000) | (Tcp, 1863) | (Tcp, 5222) | (Tcp, 6667) => Im,
        // P2P: BitTorrent 6881-6889, eMule 4662/4672, Xunlei 15000.
        (Tcp, 6881..=6889) | (Tcp, 4662) | (Udp, 4672) | (Tcp, 15000) => P2p,
        // Music streaming: RTSP 554 on udp legacy players, Kugou 7001,
        // NetEase-era 8001, SHOUTcast 8002.
        (Tcp, 7001) | (Tcp, 8001) | (Tcp, 8002) | (Udp, 554) => Music,
        // Video: RTSP 554/tcp, RTMP 1935, PPLive 3708, PPStream 8008.
        (Tcp, 554) | (Tcp, 1935) | (Udp, 3708) | (Tcp, 8008) => Video,
        _ => return None,
    };
    Some(category)
}

/// A canonical server port for each realm — the inverse of
/// [`classify_port`], used by the synthetic flow generator so generated
/// flows classify back to their source realm.
pub fn canonical_port(category: AppCategory) -> (TransportProtocol, u16) {
    use AppCategory::*;
    use TransportProtocol::*;
    match category {
        Im => (Udp, 8000),
        P2p => (Tcp, 6881),
        Music => (Tcp, 7001),
        Email => (Tcp, 25),
        Video => (Tcp, 1935),
        WebBrowsing => (Tcp, 80),
    }
}

/// Aggregates a batch of flows into per-realm volumes, dropping
/// unclassifiable flows. Returns the per-realm volumes and the volume that
/// could not be classified.
pub fn aggregate_flows(flows: &[FlowRecord]) -> ([Bytes; APP_CATEGORY_COUNT], Bytes) {
    let mut volumes = [Bytes::ZERO; APP_CATEGORY_COUNT];
    let mut unclassified = Bytes::ZERO;
    for flow in flows {
        match classify_port(flow.protocol, flow.server_port) {
            Some(category) => volumes[category.index()] += flow.bytes,
            None => unclassified += flow.bytes,
        }
    }
    (volumes, unclassified)
}

#[cfg(test)]
mod tests {
    use super::*;
    use s3_types::{Timestamp, UserId};

    #[test]
    fn classifies_the_big_six() {
        assert_eq!(
            classify_port(TransportProtocol::Tcp, 80),
            Some(AppCategory::WebBrowsing)
        );
        assert_eq!(
            classify_port(TransportProtocol::Tcp, 443),
            Some(AppCategory::WebBrowsing)
        );
        assert_eq!(
            classify_port(TransportProtocol::Tcp, 25),
            Some(AppCategory::Email)
        );
        assert_eq!(
            classify_port(TransportProtocol::Udp, 8000),
            Some(AppCategory::Im)
        );
        assert_eq!(
            classify_port(TransportProtocol::Tcp, 6884),
            Some(AppCategory::P2p)
        );
        assert_eq!(
            classify_port(TransportProtocol::Tcp, 7001),
            Some(AppCategory::Music)
        );
        assert_eq!(
            classify_port(TransportProtocol::Tcp, 1935),
            Some(AppCategory::Video)
        );
    }

    #[test]
    fn protocol_matters() {
        // RTSP over TCP is video; the UDP legacy path is music streaming.
        assert_eq!(
            classify_port(TransportProtocol::Tcp, 554),
            Some(AppCategory::Video)
        );
        assert_eq!(
            classify_port(TransportProtocol::Udp, 554),
            Some(AppCategory::Music)
        );
        // Port 8000 is IM only on UDP.
        assert_eq!(classify_port(TransportProtocol::Tcp, 8000), None);
    }

    #[test]
    fn unknown_ports_are_none() {
        assert_eq!(classify_port(TransportProtocol::Tcp, 12345), None);
        assert_eq!(classify_port(TransportProtocol::Udp, 1), None);
    }

    #[test]
    fn canonical_ports_round_trip() {
        for category in AppCategory::ALL {
            let (proto, port) = canonical_port(category);
            assert_eq!(
                classify_port(proto, port),
                Some(category),
                "canonical port for {category} does not classify back"
            );
        }
    }

    #[test]
    fn aggregate_splits_known_and_unknown() {
        let mk = |port, proto, bytes| FlowRecord {
            user: UserId::new(0),
            start: Timestamp::ZERO,
            protocol: proto,
            server_port: port,
            bytes: Bytes::new(bytes),
        };
        let flows = vec![
            mk(80, TransportProtocol::Tcp, 100),
            mk(443, TransportProtocol::Tcp, 50),
            mk(6881, TransportProtocol::Tcp, 200),
            mk(9999, TransportProtocol::Tcp, 77),
        ];
        let (volumes, unclassified) = aggregate_flows(&flows);
        assert_eq!(volumes[AppCategory::WebBrowsing.index()], Bytes::new(150));
        assert_eq!(volumes[AppCategory::P2p.index()], Bytes::new(200));
        assert_eq!(unclassified, Bytes::new(77));
    }

    #[test]
    fn aggregate_empty_is_zero() {
        let (volumes, unclassified) = aggregate_flows(&[]);
        assert!(volumes.iter().all(|v| v.is_zero()));
        assert!(unclassified.is_zero());
    }
}
