//! An indexed, queryable session log.
//!
//! [`TraceStore`] is the substrate under every analysis in the paper:
//! per-AP throughput bins feed the balance index, per-user day profiles
//! feed NMI and clustering, and departure scans feed the co-leaving miner.

use std::collections::HashMap;

use s3_types::{ApId, Bytes, ControllerId, TimeDelta, Timestamp, UserId, APP_CATEGORY_COUNT};

use crate::SessionRecord;

/// An immutable session log with user/AP/controller indexes.
#[derive(Debug, Clone)]
pub struct TraceStore {
    /// All records, sorted by ascending `connect`.
    records: Vec<SessionRecord>,
    by_user: HashMap<UserId, Vec<usize>>,
    by_ap: HashMap<ApId, Vec<usize>>,
    aps_by_controller: HashMap<ControllerId, Vec<ApId>>,
}

impl TraceStore {
    /// Builds the store, sorting records by connect time and indexing them.
    pub fn new(mut records: Vec<SessionRecord>) -> Self {
        records.sort_by_key(|r| (r.connect, r.user));
        let mut by_user: HashMap<UserId, Vec<usize>> = HashMap::new();
        let mut by_ap: HashMap<ApId, Vec<usize>> = HashMap::new();
        let mut aps_by_controller: HashMap<ControllerId, Vec<ApId>> = HashMap::new();
        for (i, r) in records.iter().enumerate() {
            by_user.entry(r.user).or_default().push(i);
            by_ap.entry(r.ap).or_default().push(i);
            let aps = aps_by_controller.entry(r.controller).or_default();
            if !aps.contains(&r.ap) {
                aps.push(r.ap);
            }
        }
        for aps in aps_by_controller.values_mut() {
            aps.sort_unstable();
        }
        TraceStore {
            records,
            by_user,
            by_ap,
            aps_by_controller,
        }
    }

    /// All records, ascending by connect time.
    pub fn records(&self) -> &[SessionRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Distinct users, ascending.
    pub fn users(&self) -> Vec<UserId> {
        let mut users: Vec<UserId> = self.by_user.keys().copied().collect();
        users.sort_unstable();
        users
    }

    /// Distinct controllers, ascending.
    pub fn controllers(&self) -> Vec<ControllerId> {
        let mut out: Vec<ControllerId> = self.aps_by_controller.keys().copied().collect();
        out.sort_unstable();
        out
    }

    /// APs observed under `controller`, ascending (empty if unknown).
    pub fn aps_of(&self, controller: ControllerId) -> &[ApId] {
        self.aps_by_controller
            .get(&controller)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// All sessions of `user`, in connect order.
    pub fn sessions_of(&self, user: UserId) -> impl Iterator<Item = &SessionRecord> + '_ {
        self.by_user
            .get(&user)
            .into_iter()
            .flatten()
            .map(move |&i| &self.records[i])
    }

    /// All sessions served by `ap`, in connect order.
    pub fn sessions_on(&self, ap: ApId) -> impl Iterator<Item = &SessionRecord> + '_ {
        self.by_ap
            .get(&ap)
            .into_iter()
            .flatten()
            .map(move |&i| &self.records[i])
    }

    /// Sessions overlapping the half-open window `[from, to)`.
    pub fn sessions_overlapping(
        &self,
        from: Timestamp,
        to: Timestamp,
    ) -> impl Iterator<Item = &SessionRecord> + '_ {
        // Records are sorted by connect; everything connecting at or after
        // `to` can be skipped wholesale.
        let end = self.records.partition_point(|r| r.connect < to);
        self.records[..end]
            .iter()
            .filter(move |r| r.overlaps(from, to))
    }

    /// First and last day touched by any record (inclusive), or `None` for
    /// an empty store.
    pub fn day_range(&self) -> Option<(u64, u64)> {
        if self.records.is_empty() {
            return None;
        }
        let first = self.records.first().expect("non-empty").connect.day();
        let last = self
            .records
            .iter()
            .map(|r| r.disconnect.day())
            .max()
            .expect("non-empty");
        Some((first, last))
    }

    /// Per-AP served volume within `[from, to)` for every AP of
    /// `controller` (uniform-spread attribution). APs with no overlapping
    /// session report zero — exactly the vector the balance index needs.
    pub fn ap_volumes_in(
        &self,
        controller: ControllerId,
        from: Timestamp,
        to: Timestamp,
    ) -> Vec<(ApId, Bytes)> {
        let aps = self.aps_of(controller);
        let mut volumes: HashMap<ApId, Bytes> = aps.iter().map(|&ap| (ap, Bytes::ZERO)).collect();
        for r in self.sessions_overlapping(from, to) {
            if r.controller == controller {
                if let Some(v) = volumes.get_mut(&r.ap) {
                    *v += r.volume_within(from, to);
                }
            }
        }
        let mut out: Vec<(ApId, Bytes)> = aps.iter().map(|&ap| (ap, volumes[&ap])).collect();
        out.sort_by_key(|&(ap, _)| ap);
        out
    }

    /// Per-AP associated-user counts at instant `t` for every AP of
    /// `controller` (Fig. 4's `β_user` input).
    pub fn ap_user_counts_at(&self, controller: ControllerId, t: Timestamp) -> Vec<(ApId, u32)> {
        let aps = self.aps_of(controller);
        let mut counts: HashMap<ApId, u32> = aps.iter().map(|&ap| (ap, 0)).collect();
        for r in self.sessions_overlapping(t, t + TimeDelta::secs(1)) {
            if r.controller == controller {
                if let Some(c) = counts.get_mut(&r.ap) {
                    *c += 1;
                }
            }
        }
        let mut out: Vec<(ApId, u32)> = aps.iter().map(|&ap| (ap, counts[&ap])).collect();
        out.sort_by_key(|&(ap, _)| ap);
        out
    }

    /// Per-realm volume generated by `user` on `day` (sessions are
    /// attributed to days by uniform spread across the days they touch).
    pub fn user_day_volumes(&self, user: UserId, day: u64) -> [Bytes; APP_CATEGORY_COUNT] {
        let from = Timestamp::from_secs(day * s3_types::SECS_PER_DAY);
        let to = Timestamp::from_secs((day + 1) * s3_types::SECS_PER_DAY);
        let mut out = [Bytes::ZERO; APP_CATEGORY_COUNT];
        for r in self.sessions_of(user) {
            if !r.overlaps(from, to) {
                continue;
            }
            let total = r.total_volume();
            if total.is_zero() {
                continue;
            }
            let in_window = r.volume_within(from, to).as_f64() / total.as_f64();
            for (slot, v) in out.iter_mut().zip(r.volume_by_app.iter()) {
                *slot += Bytes::new((v.as_f64() * in_window) as u64);
            }
        }
        out
    }

    /// Per-realm volume of `user` summed over days `first..=last`.
    pub fn user_window_volumes(
        &self,
        user: UserId,
        first: u64,
        last: u64,
    ) -> [Bytes; APP_CATEGORY_COUNT] {
        let mut out = [Bytes::ZERO; APP_CATEGORY_COUNT];
        for day in first..=last {
            let v = self.user_day_volumes(user, day);
            for (slot, add) in out.iter_mut().zip(v.iter()) {
                *slot += *add;
            }
        }
        out
    }

    /// Departure events `(time, user, ap)` within `[from, to)`, sorted by
    /// time — the raw material of the co-leaving miner.
    pub fn departures_in(&self, from: Timestamp, to: Timestamp) -> Vec<(Timestamp, UserId, ApId)> {
        let mut out: Vec<(Timestamp, UserId, ApId)> = self
            .records
            .iter()
            .filter(|r| r.disconnect >= from && r.disconnect < to)
            .map(|r| (r.disconnect, r.user, r.ap))
            .collect();
        out.sort_unstable_by_key(|&(t, u, _)| (t, u));
        out
    }

    /// A sub-store containing only records whose connect day lies in
    /// `first..=last` (the paper's train/test split by calendar days).
    pub fn slice_days(&self, first: u64, last: u64) -> TraceStore {
        let records: Vec<SessionRecord> = self
            .records
            .iter()
            .filter(|r| {
                let d = r.connect.day();
                d >= first && d <= last
            })
            .cloned()
            .collect();
        TraceStore::new(records)
    }
}

impl FromIterator<SessionRecord> for TraceStore {
    fn from_iter<T: IntoIterator<Item = SessionRecord>>(iter: T) -> Self {
        TraceStore::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::concentrated_volumes;
    use s3_types::AppCategory;

    fn rec(user: u32, ap: u32, ctl: u32, connect: u64, disconnect: u64, mb: u64) -> SessionRecord {
        SessionRecord {
            user: UserId::new(user),
            ap: ApId::new(ap),
            controller: ControllerId::new(ctl),
            connect: Timestamp::from_secs(connect),
            disconnect: Timestamp::from_secs(disconnect),
            volume_by_app: concentrated_volumes(AppCategory::WebBrowsing, Bytes::megabytes(mb)),
        }
    }

    fn sample() -> TraceStore {
        TraceStore::new(vec![
            rec(1, 0, 0, 100, 1100, 10),
            rec(2, 1, 0, 200, 700, 5),
            rec(1, 0, 0, 2000, 2600, 2),
            rec(3, 2, 1, 50, 5000, 20),
        ])
    }

    #[test]
    fn construction_sorts_and_indexes() {
        let s = sample();
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert!(s.records().windows(2).all(|w| w[0].connect <= w[1].connect));
        assert_eq!(
            s.users(),
            vec![UserId::new(1), UserId::new(2), UserId::new(3)]
        );
        assert_eq!(
            s.controllers(),
            vec![ControllerId::new(0), ControllerId::new(1)]
        );
        assert_eq!(
            s.aps_of(ControllerId::new(0)),
            &[ApId::new(0), ApId::new(1)]
        );
        assert!(s.aps_of(ControllerId::new(9)).is_empty());
        assert_eq!(s.sessions_of(UserId::new(1)).count(), 2);
        assert_eq!(s.sessions_on(ApId::new(0)).count(), 2);
        assert_eq!(s.sessions_of(UserId::new(99)).count(), 0);
    }

    #[test]
    fn overlap_query() {
        let s = sample();
        let hits: Vec<UserId> = s
            .sessions_overlapping(Timestamp::from_secs(600), Timestamp::from_secs(800))
            .map(|r| r.user)
            .collect();
        assert_eq!(hits, vec![UserId::new(3), UserId::new(1), UserId::new(2)]);
        // Session ending exactly at `from` is excluded (half-open).
        let hits: Vec<UserId> = s
            .sessions_overlapping(Timestamp::from_secs(700), Timestamp::from_secs(800))
            .map(|r| r.user)
            .collect();
        assert_eq!(hits, vec![UserId::new(3), UserId::new(1)]);
    }

    #[test]
    fn ap_volumes_include_idle_aps() {
        let s = sample();
        let volumes = s.ap_volumes_in(
            ControllerId::new(0),
            Timestamp::from_secs(0),
            Timestamp::from_secs(10_000),
        );
        assert_eq!(volumes.len(), 2);
        assert_eq!(volumes[0].0, ApId::new(0));
        assert_eq!(volumes[0].1, Bytes::megabytes(12));
        assert_eq!(volumes[1].1, Bytes::megabytes(5));
        // A window with no sessions: all zero but every AP present.
        let volumes = s.ap_volumes_in(
            ControllerId::new(0),
            Timestamp::from_secs(8_000),
            Timestamp::from_secs(9_000),
        );
        assert!(volumes.iter().all(|&(_, v)| v.is_zero()));
    }

    #[test]
    fn user_counts_at_instant() {
        let s = sample();
        let counts = s.ap_user_counts_at(ControllerId::new(0), Timestamp::from_secs(500));
        assert_eq!(counts, vec![(ApId::new(0), 1), (ApId::new(1), 1)]);
        let counts = s.ap_user_counts_at(ControllerId::new(0), Timestamp::from_secs(1500));
        assert_eq!(counts, vec![(ApId::new(0), 0), (ApId::new(1), 0)]);
    }

    #[test]
    fn day_volumes_split_across_days() {
        // A session spanning the midnight between day 0 and day 1.
        let s = TraceStore::new(vec![rec(1, 0, 0, 86_400 - 500, 86_400 + 500, 10)]);
        let d0 = s.user_day_volumes(UserId::new(1), 0);
        let d1 = s.user_day_volumes(UserId::new(1), 1);
        let total = d0[5].as_f64() + d1[5].as_f64();
        assert!((d0[5].as_f64() - d1[5].as_f64()).abs() < 1.0);
        assert!((total - Bytes::megabytes(10).as_f64()).abs() < 2.0);
        let w = s.user_window_volumes(UserId::new(1), 0, 1);
        assert!((w[5].as_f64() - total).abs() < 1.0);
    }

    #[test]
    fn departures_sorted() {
        let s = sample();
        let deps = s.departures_in(Timestamp::from_secs(0), Timestamp::from_secs(3_000));
        let times: Vec<u64> = deps.iter().map(|&(t, _, _)| t.as_secs()).collect();
        assert_eq!(times, vec![700, 1100, 2600]);
    }

    #[test]
    fn slice_days_filters_by_connect_day() {
        let s = TraceStore::new(vec![
            rec(1, 0, 0, 100, 200, 1),
            rec(2, 0, 0, 86_400 + 100, 86_400 + 200, 1),
            rec(3, 0, 0, 3 * 86_400, 3 * 86_400 + 100, 1),
        ]);
        assert_eq!(s.day_range(), Some((0, 3)));
        let sliced = s.slice_days(1, 2);
        assert_eq!(sliced.len(), 1);
        assert_eq!(sliced.records()[0].user, UserId::new(2));
        assert_eq!(sliced.day_range(), Some((1, 1)));
    }

    #[test]
    fn empty_store() {
        let s = TraceStore::new(vec![]);
        assert!(s.is_empty());
        assert_eq!(s.day_range(), None);
        assert!(s.users().is_empty());
        let from_iter: TraceStore = std::iter::empty().collect();
        assert!(from_iter.is_empty());
    }
}
