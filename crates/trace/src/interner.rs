//! Interning of foreign identifiers.
//!
//! Real controller logs identify users by hashed MAC strings and APs by
//! names like `"lib-3f-ap07"`. The toolkit wants dense `u32` newtypes (flat
//! per-entity state). [`IdInterner`] maps arbitrary strings to dense ids,
//! stably and reversibly — the bridge for ingesting real traces.

use std::collections::HashMap;

/// A stable string → dense-index interner.
///
/// Indices are assigned in first-seen order, so interning the same stream
/// twice yields identical mappings.
///
/// # Example
/// ```
/// # use s3_trace::interner::IdInterner;
/// let mut ids = IdInterner::new();
/// assert_eq!(ids.intern("aa:bb:cc"), 0);
/// assert_eq!(ids.intern("11:22:33"), 1);
/// assert_eq!(ids.intern("aa:bb:cc"), 0); // stable
/// assert_eq!(ids.resolve(1), Some("11:22:33"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct IdInterner {
    by_name: HashMap<String, u32>,
    names: Vec<String>,
}

impl IdInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        IdInterner::default()
    }

    /// Returns the dense index for `name`, assigning the next free index on
    /// first sight.
    ///
    /// # Panics
    ///
    /// Panics after `u32::MAX` distinct names (unreachable in practice).
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = u32::try_from(self.names.len()).expect("interner overflow");
        self.by_name.insert(name.to_string(), id);
        self.names.push(name.to_string());
        id
    }

    /// The index of `name` if already interned.
    pub fn get(&self, name: &str) -> Option<u32> {
        self.by_name.get(name).copied()
    }

    /// The original name behind `id`.
    pub fn resolve(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(index, name)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> + '_ {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (i as u32, n.as_str()))
    }

    /// Writes the mapping as two-column CSV (`id,name`).
    ///
    /// # Errors
    ///
    /// Propagates writer failures.
    pub fn write_csv<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(w, "id,name")?;
        for (id, name) in self.iter() {
            // Names may contain commas; quote minimally.
            if name.contains(',') || name.contains('"') {
                writeln!(w, "{id},\"{}\"", name.replace('"', "\"\""))?;
            } else {
                writeln!(w, "{id},{name}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable_and_dense() {
        let mut ids = IdInterner::new();
        assert!(ids.is_empty());
        let a = ids.intern("alpha");
        let b = ids.intern("beta");
        let a2 = ids.intern("alpha");
        assert_eq!((a, b, a2), (0, 1, 0));
        assert_eq!(ids.len(), 2);
        assert_eq!(ids.get("beta"), Some(1));
        assert_eq!(ids.get("gamma"), None);
    }

    #[test]
    fn resolve_inverts_intern() {
        let mut ids = IdInterner::new();
        for name in ["x", "y", "z"] {
            ids.intern(name);
        }
        for (id, name) in ids.iter() {
            assert_eq!(ids.resolve(id), Some(name));
            assert_eq!(ids.get(name), Some(id));
        }
        assert_eq!(ids.resolve(99), None);
    }

    #[test]
    fn same_stream_same_mapping() {
        let stream = ["u1", "u7", "u1", "u3", "u7"];
        let mut a = IdInterner::new();
        let mut b = IdInterner::new();
        let ids_a: Vec<u32> = stream.iter().map(|s| a.intern(s)).collect();
        let ids_b: Vec<u32> = stream.iter().map(|s| b.intern(s)).collect();
        assert_eq!(ids_a, ids_b);
    }

    #[test]
    fn csv_output_escapes_commas() {
        let mut ids = IdInterner::new();
        ids.intern("plain");
        ids.intern("with,comma");
        ids.intern("with\"quote");
        let mut buf = Vec::new();
        ids.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("0,plain"));
        assert!(text.contains("1,\"with,comma\""));
        assert!(text.contains("2,\"with\"\"quote\""));
    }
}
