//! Trace record types.
//!
//! [`SessionDemand`] is what the *generator* produces: a user appears at a
//! building (controller domain) at some time with a traffic demand, and
//! leaves at some later time. Which AP serves the session is a *policy*
//! decision, so the demand record carries no AP.
//!
//! [`SessionRecord`] is what the *network* logs after a policy has chosen
//! an AP — the exact field set of the paper's data-center log: user id,
//! connect/disconnect timestamps, serving AP, and served traffic volume
//! (broken down by application realm, which the paper recovers from router
//! flow logs).

use s3_types::{
    ApId, AppCategory, AppMix, AppMixError, BitsPerSec, BuildingId, Bytes, ControllerId, TimeDelta,
    Timestamp, UserId, APP_CATEGORY_COUNT,
};

/// Transport-layer protocol of a flow (the classifier keys on port+proto).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TransportProtocol {
    /// Transmission Control Protocol.
    Tcp,
    /// User Datagram Protocol.
    Udp,
}

/// A traffic demand: one user's presence interval in one controller domain.
///
/// The generator emits these sorted by `arrive`; the simulator replays them
/// through an AP-selection policy to produce [`SessionRecord`]s.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SessionDemand {
    /// The user.
    pub user: UserId,
    /// Building the user is in (one controller per building).
    pub building: BuildingId,
    /// Controller domain serving that building.
    pub controller: ControllerId,
    /// Arrival instant.
    pub arrive: Timestamp,
    /// Departure instant (strictly after `arrive`).
    pub depart: Timestamp,
    /// Traffic volume by application realm over the whole session.
    pub volume_by_app: [Bytes; APP_CATEGORY_COUNT],
}

impl SessionDemand {
    /// Session duration.
    pub fn duration(&self) -> TimeDelta {
        self.depart.saturating_sub(self.arrive)
    }

    /// Total volume over all realms.
    pub fn total_volume(&self) -> Bytes {
        self.volume_by_app.iter().copied().sum()
    }

    /// Mean throughput of the session, assuming traffic spreads uniformly
    /// over the presence interval (zero for zero-length sessions).
    pub fn mean_rate(&self) -> BitsPerSec {
        self.total_volume()
            .rate_over(self.duration())
            .unwrap_or(BitsPerSec::ZERO)
    }

    /// The session's application profile (normalized volume shares).
    ///
    /// # Errors
    ///
    /// Returns [`AppMixError::AllZero`] for a session with no traffic.
    pub fn app_mix(&self) -> Result<AppMix, AppMixError> {
        let mut volumes = [0.0; APP_CATEGORY_COUNT];
        for (i, v) in self.volume_by_app.iter().enumerate() {
            volumes[i] = v.as_f64();
        }
        AppMix::from_volumes(volumes)
    }

    /// True when the session overlaps the half-open interval `[from, to)`.
    pub fn overlaps(&self, from: Timestamp, to: Timestamp) -> bool {
        self.arrive < to && self.depart > from
    }
}

/// A logged association session — the paper's per-connection record.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SessionRecord {
    /// The user (hashed MAC in the real trace; dense id here).
    pub user: UserId,
    /// The AP that served the session.
    pub ap: ApId,
    /// Controller domain of the AP.
    pub controller: ControllerId,
    /// Connected timestamp.
    pub connect: Timestamp,
    /// Disconnected timestamp.
    pub disconnect: Timestamp,
    /// Served traffic volume by application realm.
    pub volume_by_app: [Bytes; APP_CATEGORY_COUNT],
}

impl SessionRecord {
    /// Builds a record by attaching the serving AP to a demand.
    pub fn from_demand(demand: &SessionDemand, ap: ApId) -> Self {
        SessionRecord {
            user: demand.user,
            ap,
            controller: demand.controller,
            connect: demand.arrive,
            disconnect: demand.depart,
            volume_by_app: demand.volume_by_app,
        }
    }

    /// Session duration.
    pub fn duration(&self) -> TimeDelta {
        self.disconnect.saturating_sub(self.connect)
    }

    /// Total served volume.
    pub fn total_volume(&self) -> Bytes {
        self.volume_by_app.iter().copied().sum()
    }

    /// Mean session throughput (uniform-spread assumption).
    pub fn mean_rate(&self) -> BitsPerSec {
        self.total_volume()
            .rate_over(self.duration())
            .unwrap_or(BitsPerSec::ZERO)
    }

    /// Volume served inside the half-open window `[from, to)` under the
    /// uniform-spread assumption — the quantity per-bin throughput
    /// accounting needs.
    pub fn volume_within(&self, from: Timestamp, to: Timestamp) -> Bytes {
        let duration = self.duration();
        if duration.is_zero() || from >= to {
            return Bytes::ZERO;
        }
        let start = self.connect.as_secs().max(from.as_secs());
        let end = self.disconnect.as_secs().min(to.as_secs());
        if start >= end {
            return Bytes::ZERO;
        }
        let fraction = (end - start) as f64 / duration.as_secs_f64();
        Bytes::new((self.total_volume().as_f64() * fraction) as u64)
    }

    /// True when the session overlaps `[from, to)`.
    pub fn overlaps(&self, from: Timestamp, to: Timestamp) -> bool {
        self.connect < to && self.disconnect > from
    }
}

/// A router flow log entry — the input of the application classifier.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FlowRecord {
    /// The user that generated the flow.
    pub user: UserId,
    /// Flow start.
    pub start: Timestamp,
    /// Transport protocol.
    pub protocol: TransportProtocol,
    /// Server-side (destination) port, which identifies the application.
    pub server_port: u16,
    /// Bytes carried by the flow.
    pub bytes: Bytes,
}

/// An all-zero per-realm volume array — the starting point for building
/// records by hand.
pub fn zero_volumes() -> [Bytes; APP_CATEGORY_COUNT] {
    [Bytes::ZERO; APP_CATEGORY_COUNT]
}

/// A per-realm volume array with the whole volume in one category —
/// convenient for constructing single-application test sessions.
pub fn concentrated_volumes(category: AppCategory, volume: Bytes) -> [Bytes; APP_CATEGORY_COUNT] {
    let mut v = zero_volumes();
    v[category.index()] = volume;
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand() -> SessionDemand {
        SessionDemand {
            user: UserId::new(1),
            building: BuildingId::new(0),
            controller: ControllerId::new(0),
            arrive: Timestamp::from_secs(100),
            depart: Timestamp::from_secs(1100),
            volume_by_app: concentrated_volumes(AppCategory::Video, Bytes::new(1_000_000)),
        }
    }

    #[test]
    fn demand_derived_quantities() {
        let d = demand();
        assert_eq!(d.duration(), TimeDelta::secs(1000));
        assert_eq!(d.total_volume(), Bytes::new(1_000_000));
        assert!((d.mean_rate().as_f64() - 8_000.0).abs() < 1e-9);
        let mix = d.app_mix().unwrap();
        assert_eq!(mix.share(AppCategory::Video), 1.0);
    }

    #[test]
    fn empty_demand_has_zero_rate_and_no_mix() {
        let mut d = demand();
        d.volume_by_app = zero_volumes();
        assert_eq!(d.mean_rate(), BitsPerSec::ZERO);
        assert!(d.app_mix().is_err());
    }

    #[test]
    fn overlap_semantics_are_half_open() {
        let d = demand();
        assert!(d.overlaps(Timestamp::from_secs(0), Timestamp::from_secs(101)));
        assert!(!d.overlaps(Timestamp::from_secs(0), Timestamp::from_secs(100)));
        assert!(d.overlaps(Timestamp::from_secs(1099), Timestamp::from_secs(2000)));
        assert!(!d.overlaps(Timestamp::from_secs(1100), Timestamp::from_secs(2000)));
    }

    #[test]
    fn record_from_demand_copies_fields() {
        let d = demand();
        let r = SessionRecord::from_demand(&d, ApId::new(7));
        assert_eq!(r.user, d.user);
        assert_eq!(r.ap, ApId::new(7));
        assert_eq!(r.connect, d.arrive);
        assert_eq!(r.disconnect, d.depart);
        assert_eq!(r.total_volume(), d.total_volume());
    }

    #[test]
    fn volume_within_partial_window() {
        let d = demand();
        let r = SessionRecord::from_demand(&d, ApId::new(0));
        // Window covers half the session (500 of 1000 seconds).
        let v = r.volume_within(Timestamp::from_secs(100), Timestamp::from_secs(600));
        assert_eq!(v, Bytes::new(500_000));
        // Window fully covers the session.
        let v = r.volume_within(Timestamp::from_secs(0), Timestamp::from_secs(9999));
        assert_eq!(v, Bytes::new(1_000_000));
        // Disjoint window.
        let v = r.volume_within(Timestamp::from_secs(2000), Timestamp::from_secs(3000));
        assert_eq!(v, Bytes::ZERO);
        // Inverted window.
        let v = r.volume_within(Timestamp::from_secs(600), Timestamp::from_secs(100));
        assert_eq!(v, Bytes::ZERO);
    }

    #[test]
    fn volume_within_zero_duration_session() {
        let mut d = demand();
        d.depart = d.arrive;
        let r = SessionRecord::from_demand(&d, ApId::new(0));
        assert_eq!(
            r.volume_within(Timestamp::from_secs(0), Timestamp::from_secs(9999)),
            Bytes::ZERO
        );
    }
}
